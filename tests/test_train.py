"""Integration tests for the training loops (Algorithms 1 and 2)."""

import numpy as np
import pytest

from repro.aligners import make_aligner
from repro.data import target_da_split
from repro.datasets import load_dataset
from repro.train import (TrainConfig, combine_datasets, evaluate, train_gan,
                         train_joint, train_source_only)

FAST = TrainConfig(epochs=2, batch_size=16, learning_rate=1e-3, beta=0.1,
                   pretrain_epochs=1, iterations_per_epoch=4, seed=0)


class TestTrainConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainConfig(batch_size=0)
        with pytest.raises(ValueError):
            TrainConfig(learning_rate=0)
        with pytest.raises(ValueError):
            TrainConfig(beta=-1)

    def test_beta_grid_matches_paper(self):
        assert TrainConfig.BETA_GRID == (0.001, 0.01, 0.1, 1.0, 5.0)


class TestSourceOnly:
    def test_learns_source(self, lm_copy, matcher_factory, books_restaurants):
        source, __, valid, test = books_restaurants
        matcher = matcher_factory(lm_copy.feature_dim)
        cfg = TrainConfig(epochs=8, batch_size=16, learning_rate=1e-3,
                          seed=0, track_sets=True)
        result = train_source_only(lm_copy, matcher, source, valid, test, cfg)
        # The model must master the source during training (the restored
        # snapshot is chosen by *target-valid* F1, so check the curve).
        assert max(r.source_f1 for r in result.history) > 0.9
        assert result.method == "noda"
        assert len(result.history) == 8

    def test_history_and_snapshot(self, lm_copy, matcher_factory,
                                  books_restaurants):
        source, __, valid, test = books_restaurants
        matcher = matcher_factory(lm_copy.feature_dim)
        result = train_source_only(lm_copy, matcher, source, valid, test, FAST)
        assert result.best_epoch in (0, 1)
        assert result.best_valid_f1 == max(r.valid_f1 for r in result.history)

    def test_rejects_unlabeled_source(self, lm_copy, matcher_factory,
                                      books_restaurants):
        source, target, valid, test = books_restaurants
        matcher = matcher_factory(lm_copy.feature_dim)
        with pytest.raises(ValueError):
            train_source_only(lm_copy, matcher, target, valid, test, FAST)


class TestJointTraining:
    @pytest.mark.parametrize("aligner_name", ["mmd", "k_order", "grl"])
    def test_runs_and_tracks_alignment(self, aligner_name, lm_copy,
                                       matcher_factory, books_restaurants):
        source, target, valid, test = books_restaurants
        matcher = matcher_factory(lm_copy.feature_dim)
        aligner = make_aligner(aligner_name, lm_copy.feature_dim,
                               np.random.default_rng(1))
        result = train_joint(lm_copy, matcher, aligner, source, target,
                             valid, test, FAST)
        assert result.method == aligner_name
        assert all(np.isfinite(r.alignment_loss) for r in result.history)
        assert 0.0 <= result.best_f1 <= 100.0

    def test_ed_aligner_runs(self, lm_copy, matcher_factory,
                             books_restaurants):
        source, target, valid, test = books_restaurants
        matcher = matcher_factory(lm_copy.feature_dim)
        aligner = make_aligner("ed", lm_copy.feature_dim,
                               np.random.default_rng(1),
                               vocab=lm_copy.vocab, max_len=lm_copy.max_len)
        cfg = TrainConfig(epochs=1, batch_size=8, iterations_per_epoch=2,
                          seed=0)
        result = train_joint(lm_copy, matcher, aligner, source, target,
                             valid, test, cfg)
        assert result.history[0].alignment_loss > 0  # reconstruction CE

    def test_mmd_reduces_alignment_loss(self, lm_copy, matcher_factory,
                                        books_restaurants):
        source, target, valid, test = books_restaurants
        matcher = matcher_factory(lm_copy.feature_dim)
        aligner = make_aligner("mmd", lm_copy.feature_dim,
                               np.random.default_rng(1))
        cfg = TrainConfig(epochs=6, batch_size=16, learning_rate=1e-3,
                          beta=1.0, seed=0)
        result = train_joint(lm_copy, matcher, aligner, source, target,
                             valid, test, cfg)
        first = result.history[0].alignment_loss
        last = result.history[-1].alignment_loss
        assert last < first

    def test_rejects_gan_aligner(self, lm_copy, matcher_factory,
                                 books_restaurants):
        source, target, valid, test = books_restaurants
        matcher = matcher_factory(lm_copy.feature_dim)
        aligner = make_aligner("invgan", lm_copy.feature_dim,
                               np.random.default_rng(1))
        with pytest.raises(ValueError):
            train_joint(lm_copy, matcher, aligner, source, target, valid,
                        test, FAST)

    def test_beta_zero_matches_noda_shape(self, lm_copy, matcher_factory,
                                          books_restaurants):
        source, target, valid, test = books_restaurants
        matcher = matcher_factory(lm_copy.feature_dim)
        aligner = make_aligner("mmd", lm_copy.feature_dim,
                               np.random.default_rng(1))
        cfg = TrainConfig(epochs=1, batch_size=8, beta=0.0,
                          iterations_per_epoch=2, seed=0)
        result = train_joint(lm_copy, matcher, aligner, source, target,
                             valid, test, cfg)
        assert len(result.history) == 1


class TestGanTraining:
    @pytest.mark.parametrize("aligner_name", ["invgan", "invgan_kd"])
    def test_runs(self, aligner_name, lm_copy, matcher_factory,
                  books_restaurants):
        source, target, valid, test = books_restaurants
        matcher = matcher_factory(lm_copy.feature_dim)
        aligner = make_aligner(aligner_name, lm_copy.feature_dim,
                               np.random.default_rng(1), hidden=(16,))
        result = train_gan(lm_copy, matcher, aligner, source, target,
                           valid, test, FAST)
        assert result.method == aligner_name
        assert len(result.history) == FAST.epochs

    def test_rejects_joint_aligner(self, lm_copy, matcher_factory,
                                   books_restaurants):
        source, target, valid, test = books_restaurants
        matcher = matcher_factory(lm_copy.feature_dim)
        aligner = make_aligner("mmd", lm_copy.feature_dim,
                               np.random.default_rng(1))
        with pytest.raises(ValueError):
            train_gan(lm_copy, matcher, aligner, source, target, valid,
                      test, FAST)

    def test_teacher_extractor_unchanged(self, lm_copy, matcher_factory,
                                         books_restaurants):
        source, target, valid, test = books_restaurants
        matcher = matcher_factory(lm_copy.feature_dim)
        aligner = make_aligner("invgan_kd", lm_copy.feature_dim,
                               np.random.default_rng(1), hidden=(16,))
        cfg = TrainConfig(epochs=1, batch_size=8, pretrain_epochs=1,
                          iterations_per_epoch=2, seed=0)
        train_gan(lm_copy, matcher, aligner, source, target, valid, test, cfg)
        # After step 1 the teacher F is frozen: step 2 must not move it.
        # (We can't see step-1 weights here, but the adversarial phase must
        # leave no gradient state on the teacher.)
        assert all(p.grad is None for p in lm_copy.parameters())


class TestCombineDatasets:
    def test_concatenates(self):
        a = load_dataset("fz", scale=0.05, seed=0)
        b = load_dataset("fz", scale=0.05, seed=1)
        combined = combine_datasets(a, b)
        assert len(combined) == len(a) + len(b)
        assert combined.num_matches == a.num_matches + b.num_matches
