"""Unit and gradient-check tests for the autograd tensor."""

import numpy as np
import pytest

from repro.nn import Tensor, concatenate, stack, where

from .helpers import check_gradients


RNG = np.random.default_rng(7)


def _param(shape):
    return Tensor(RNG.normal(size=shape), requires_grad=True)


class TestBasics:
    def test_construction_coerces_to_float(self):
        t = Tensor([1, 2, 3])
        assert t.data.dtype == np.float64

    def test_rejects_string_data(self):
        with pytest.raises(TypeError):
            Tensor(np.array(["a", "b"]))

    def test_shape_ndim_size(self):
        t = Tensor(np.zeros((2, 3)))
        assert t.shape == (2, 3)
        assert t.ndim == 2
        assert t.size == 6
        assert len(t) == 2

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_detach_cuts_graph(self):
        a = _param((2,))
        b = (a * 2).detach()
        assert not b.requires_grad
        assert b._backward is None

    def test_repr_mentions_grad_flag(self):
        assert "requires_grad" in repr(_param((1,)))

    def test_backward_requires_scalar(self):
        a = _param((3,))
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()


class TestArithmeticGradients:
    def test_add(self):
        a, b = _param((3, 4)), _param((3, 4))
        check_gradients(lambda: (a + b).sum(), [a, b])

    def test_add_broadcast(self):
        a, b = _param((3, 4)), _param((4,))
        check_gradients(lambda: (a + b).sum(), [a, b])

    def test_add_scalar_broadcast_rows(self):
        a, b = _param((3, 4)), _param((3, 1))
        check_gradients(lambda: (a + b).sum(), [a, b])

    def test_sub(self):
        a, b = _param((2, 5)), _param((2, 5))
        check_gradients(lambda: (a - b).sum(), [a, b])

    def test_rsub(self):
        a = _param((4,))
        check_gradients(lambda: (1.0 - a).sum(), [a])

    def test_mul(self):
        a, b = _param((3, 3)), _param((3, 3))
        check_gradients(lambda: (a * b).sum(), [a, b])

    def test_mul_broadcast(self):
        a, b = _param((2, 3, 4)), _param((1, 3, 1))
        check_gradients(lambda: (a * b).sum(), [a, b])

    def test_div(self):
        a = _param((3, 3))
        b = Tensor(RNG.uniform(0.5, 2.0, size=(3, 3)), requires_grad=True)
        check_gradients(lambda: (a / b).sum(), [a, b])

    def test_rdiv(self):
        b = Tensor(RNG.uniform(0.5, 2.0, size=(4,)), requires_grad=True)
        check_gradients(lambda: (1.0 / b).sum(), [b])

    def test_neg(self):
        a = _param((5,))
        check_gradients(lambda: (-a).sum(), [a])

    def test_pow(self):
        a = Tensor(RNG.uniform(0.5, 2.0, size=(3,)), requires_grad=True)
        check_gradients(lambda: (a ** 3).sum(), [a])

    def test_matmul_2d(self):
        a, b = _param((3, 4)), _param((4, 2))
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_matmul_batched(self):
        a, b = _param((2, 3, 4)), _param((2, 4, 5))
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_matmul_broadcast_left(self):
        a, b = _param((3, 4)), _param((2, 4, 5))
        check_gradients(lambda: (a @ b).sum(), [a, b])


class TestNonlinearityGradients:
    def test_exp(self):
        a = _param((3, 3))
        check_gradients(lambda: a.exp().sum(), [a])

    def test_log(self):
        a = Tensor(RNG.uniform(0.5, 3.0, size=(4,)), requires_grad=True)
        check_gradients(lambda: a.log().sum(), [a])

    def test_sqrt(self):
        a = Tensor(RNG.uniform(0.5, 3.0, size=(4,)), requires_grad=True)
        check_gradients(lambda: a.sqrt().sum(), [a])

    def test_tanh(self):
        a = _param((4, 2))
        check_gradients(lambda: a.tanh().sum(), [a])

    def test_sigmoid(self):
        a = _param((4, 2))
        check_gradients(lambda: a.sigmoid().sum(), [a])

    def test_relu(self):
        a = Tensor(RNG.normal(size=(10,)) + 0.05, requires_grad=True)
        check_gradients(lambda: a.relu().sum(), [a])

    def test_leaky_relu(self):
        a = Tensor(RNG.normal(size=(10,)) + 0.05, requires_grad=True)
        check_gradients(lambda: a.leaky_relu(0.1).sum(), [a])

    def test_abs(self):
        a = Tensor(RNG.normal(size=(10,)) + 0.05, requires_grad=True)
        check_gradients(lambda: a.abs().sum(), [a])

    def test_clip_gradient_zero_outside(self):
        a = Tensor(np.array([-2.0, 0.0, 2.0]), requires_grad=True)
        a.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])


class TestReductionGradients:
    def test_sum_all(self):
        a = _param((3, 4))
        check_gradients(lambda: a.sum(), [a])

    def test_sum_axis(self):
        a = _param((3, 4))
        check_gradients(lambda: (a.sum(axis=0) ** 2).sum(), [a])

    def test_sum_keepdims(self):
        a = _param((3, 4))
        check_gradients(lambda: (a.sum(axis=1, keepdims=True) ** 2).sum(), [a])

    def test_mean_all(self):
        a = _param((3, 4))
        check_gradients(lambda: a.mean(), [a])

    def test_mean_axis_tuple(self):
        a = _param((2, 3, 4))
        check_gradients(lambda: (a.mean(axis=(0, 2)) ** 2).sum(), [a])

    def test_max_axis(self):
        # Values spaced out so finite differences don't cross the argmax.
        a = Tensor(np.arange(12, dtype=float).reshape(3, 4) * 0.37,
                   requires_grad=True)
        check_gradients(lambda: a.max(axis=1).sum(), [a])

    def test_max_splits_ties(self):
        a = Tensor(np.array([[1.0, 1.0, 0.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.5, 0.5, 0.0]])


class TestShapeGradients:
    def test_reshape(self):
        a = _param((2, 6))
        check_gradients(lambda: (a.reshape(3, 4) ** 2).sum(), [a])

    def test_reshape_tuple_arg(self):
        a = _param((2, 6))
        assert a.reshape((4, 3)).shape == (4, 3)

    def test_transpose_default(self):
        a = _param((2, 3))
        check_gradients(lambda: (a.transpose() ** 2).sum(), [a])

    def test_transpose_axes(self):
        a = _param((2, 3, 4))
        check_gradients(lambda: (a.transpose(1, 2, 0) ** 2).sum(), [a])

    def test_getitem_slice(self):
        a = _param((4, 5))
        check_gradients(lambda: (a[1:3, :] ** 2).sum(), [a])

    def test_getitem_fancy(self):
        a = _param((6, 3))
        idx = np.array([0, 2, 2, 5])
        check_gradients(lambda: (a[idx] ** 2).sum(), [a])

    def test_getitem_repeated_indices_accumulate(self):
        a = Tensor(np.ones((3,)), requires_grad=True)
        idx = np.array([1, 1])
        a[idx].sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 2.0, 0.0])


class TestCombinators:
    def test_concatenate_gradients(self):
        a, b = _param((2, 3)), _param((2, 2))
        check_gradients(lambda: (concatenate([a, b], axis=1) ** 2).sum(), [a, b])

    def test_stack_gradients(self):
        a, b = _param((2, 3)), _param((2, 3))
        check_gradients(lambda: (stack([a, b], axis=1) ** 2).sum(), [a, b])

    def test_where_gradients(self):
        a, b = _param((5,)), _param((5,))
        cond = np.array([True, False, True, False, True])
        check_gradients(lambda: (where(cond, a, b) ** 2).sum(), [a, b])

    def test_concatenate_values(self):
        a, b = Tensor([[1.0]]), Tensor([[2.0]])
        np.testing.assert_allclose(concatenate([a, b], axis=0).data,
                                   [[1.0], [2.0]])


class TestGraphMechanics:
    def test_gradient_accumulates_across_uses(self):
        a = _param((3,))
        loss = (a * a).sum() + a.sum()
        loss.backward()
        np.testing.assert_allclose(a.grad, 2 * a.data + 1)

    def test_diamond_graph(self):
        a = _param((2,))
        b = a * 2
        c = a * 3
        (b + c).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0, 5.0])

    def test_zero_grad_resets(self):
        a = _param((2,))
        (a * 2).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_deep_chain_no_recursion_error(self):
        a = _param((1,))
        x = a
        for __ in range(3000):
            x = x + 1.0
        x.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0])

    def test_second_backward_accumulates(self):
        a = _param((2,))
        (a * 2).sum().backward()
        (a * 2).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0, 4.0])
