"""Run-to-run determinism of the full adaptation entry point.

Two ``adapt()`` calls with the same seed must agree on every reported
number *and* on the serialized extractor bytes — the property the golden
regression tier and the artifact checksum story both stand on.  The npz
byte comparison works because ``np.savez_compressed`` archives carry no
timestamps, which ``test_serialized_bytes_are_timestamp_free`` pins.
"""

import hashlib

import numpy as np
import pytest

from repro.api import adapt
from repro.datasets import load_dataset
from repro.nn import save_state
from repro.train import TrainConfig

from .conftest import TINY_LM

pytestmark = pytest.mark.slow


def _run():
    source = load_dataset("b2", scale=0.2, seed=0)
    target = load_dataset("fz", scale=0.2, seed=0)
    return adapt(source, target, aligner="mmd",
                 config=TrainConfig(epochs=2, seed=0), seed=0,
                 lm_kwargs=dict(TINY_LM))


def _file_sha256(path):
    return hashlib.sha256(path.read_bytes()).hexdigest()


class TestAdaptDeterminism:
    def test_same_seed_same_result_and_same_bytes(self, tmp_path):
        first = _run()
        second = _run()

        assert first.best_f1 == second.best_f1
        assert first.best_epoch == second.best_epoch
        assert first.best_valid_f1 == second.best_valid_f1
        for a, b in zip(first.history, second.history):
            assert a.matching_loss == b.matching_loss
            assert a.alignment_loss == b.alignment_loss
            assert a.valid_f1 == b.valid_f1

        path_a = tmp_path / "first.npz"
        path_b = tmp_path / "second.npz"
        save_state(first.extractor, path_a)
        save_state(second.extractor, path_b)
        assert _file_sha256(path_a) == _file_sha256(path_b), \
            "same-seed runs serialized different extractor bytes"

    def test_serialized_bytes_are_timestamp_free(self, tmp_path):
        """np.savez bytes must be a pure function of the weights."""
        import time

        class _Holder:
            def state_dict(self):
                return {"w": np.arange(12.0).reshape(3, 4)}

        path_a = tmp_path / "a.npz"
        path_b = tmp_path / "b.npz"
        save_state(_Holder(), path_a)
        time.sleep(2.1)  # zip timestamps have 2-second resolution
        save_state(_Holder(), path_b)
        assert _file_sha256(path_a) == _file_sha256(path_b)
