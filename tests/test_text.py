"""Tests for tokenization, vocabulary, serialization, and batching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import (ATT, CLS, SEP, VAL, InfiniteSampler, Vocabulary,
                        encode_batch, minibatches, pad_sequences, pair_text,
                        serialize_entity, serialize_pair,
                        split_serialized_pair, tokenize)


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Hello World") == ["hello", "world"]

    def test_keeps_special_markers_whole(self):
        assert tokenize("[CLS] foo [SEP]") == ["[CLS]", "foo", "[SEP]"]

    def test_numbers_with_decimals(self):
        assert tokenize("price 239.88") == ["price", "239.88"]

    def test_punctuation_separated(self):
        assert tokenize("kodak esp-7") == ["kodak", "esp", "-", "7"]

    def test_empty_string(self):
        assert tokenize("") == []


class TestVocabulary:
    def test_specials_reserved_first(self):
        vocab = Vocabulary()
        assert vocab.pad_id == 0
        assert vocab.unk_id == 1
        assert len(vocab) == vocab.num_special

    def test_build_orders_by_frequency(self):
        vocab = Vocabulary.build(["a a a b b c"])
        assert vocab.id_of("a") < vocab.id_of("b") < vocab.id_of("c")

    def test_min_freq_filters(self):
        vocab = Vocabulary.build(["a a b"], min_freq=2)
        assert "a" in vocab
        assert "b" not in vocab

    def test_max_size_caps(self):
        vocab = Vocabulary.build(["a a a b b c"], max_size=11)
        assert len(vocab) <= 11

    def test_max_size_too_small_raises(self):
        with pytest.raises(ValueError):
            Vocabulary.build(["a"], max_size=2)

    def test_unknown_maps_to_unk(self):
        vocab = Vocabulary.build(["known"])
        assert vocab.id_of("unknown") == vocab.unk_id

    def test_encode_decode_roundtrip(self):
        vocab = Vocabulary.build(["samsung series black flat panel"])
        ids = vocab.encode("samsung flat panel")
        assert vocab.decode(ids) == ["samsung", "flat", "panel"]

    def test_decode_skips_specials_by_default(self):
        vocab = Vocabulary.build(["x"])
        ids = [vocab.cls_id, vocab.id_of("x"), vocab.sep_id]
        assert vocab.decode(ids) == ["x"]
        assert vocab.decode(ids, skip_special=False) == ["[CLS]", "x", "[SEP]"]

    @given(st.lists(st.sampled_from("abcde"), min_size=1, max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_known_tokens_always_roundtrip(self, letters):
        text = " ".join(letters)
        vocab = Vocabulary.build([text])
        assert vocab.decode(vocab.encode(text)) == tokenize(text)


class TestSerialization:
    ENTITY_A = {"title": "balt wheasel", "price": "239.88"}
    ENTITY_B = {"title": "balt inc", "price": None}

    def test_entity_serialization_layout(self):
        tokens = serialize_entity(self.ENTITY_A)
        assert tokens == [ATT, "title", VAL, "balt", "wheasel",
                          ATT, "price", VAL, "239.88"]

    def test_none_value_is_empty_slot(self):
        tokens = serialize_entity(self.ENTITY_B)
        assert tokens.count(VAL) == 2
        # Nothing follows the second [VAL].
        assert tokens[-1] == VAL

    def test_pair_frame(self):
        tokens = serialize_pair(self.ENTITY_A, self.ENTITY_B)
        assert tokens[0] == CLS
        assert tokens[-1] == SEP
        assert tokens.count(SEP) == 2

    def test_split_inverts_pair(self):
        tokens = serialize_pair(self.ENTITY_A, self.ENTITY_B)
        left, right = split_serialized_pair(tokens)
        assert left == serialize_entity(self.ENTITY_A)
        assert right == serialize_entity(self.ENTITY_B)

    def test_split_rejects_garbage(self):
        with pytest.raises(ValueError):
            split_serialized_pair(["foo", "bar"])
        with pytest.raises(ValueError):
            split_serialized_pair([CLS, "a", SEP])

    def test_pair_text_is_joined_tokens(self):
        text = pair_text(self.ENTITY_A, self.ENTITY_B)
        assert text.startswith("[CLS] [ATT] title")
        assert tokenize(text) == serialize_pair(self.ENTITY_A, self.ENTITY_B)


class TestPadding:
    def test_shapes_and_mask(self):
        ids, mask = pad_sequences([[1, 2], [3]], max_len=4, pad_id=0)
        assert ids.shape == mask.shape == (2, 4)
        np.testing.assert_array_equal(ids[1], [3, 0, 0, 0])
        np.testing.assert_array_equal(mask[0], [1, 1, 0, 0])

    def test_truncation(self):
        ids, mask = pad_sequences([[1, 2, 3, 4, 5]], max_len=3, pad_id=0)
        np.testing.assert_array_equal(ids[0], [1, 2, 3])
        np.testing.assert_array_equal(mask[0], [1, 1, 1])

    def test_rejects_nonpositive_max_len(self):
        with pytest.raises(ValueError):
            pad_sequences([[1]], max_len=0, pad_id=0)

    def test_encode_batch(self):
        vocab = Vocabulary.build(["alpha beta"])
        ids, mask = encode_batch([["alpha"], ["beta", "alpha"]], vocab, 3)
        assert ids[0, 0] == vocab.id_of("alpha")
        assert mask.sum() == 3

    @given(st.lists(st.lists(st.integers(1, 50), max_size=12),
                    min_size=1, max_size=8),
           st.integers(1, 15))
    @settings(max_examples=30, deadline=None)
    def test_mask_counts_match_lengths(self, seqs, max_len):
        ids, mask = pad_sequences(seqs, max_len=max_len, pad_id=0)
        for seq, row in zip(seqs, mask):
            assert row.sum() == min(len(seq), max_len)


class TestMinibatches:
    def test_covers_every_index_once(self):
        seen = np.concatenate(list(minibatches(10, 3)))
        np.testing.assert_array_equal(np.sort(seen), np.arange(10))

    def test_shuffles_with_rng(self):
        a = np.concatenate(list(minibatches(50, 50, np.random.default_rng(0))))
        assert not np.array_equal(a, np.arange(50))

    def test_drop_last(self):
        batches = list(minibatches(10, 3, drop_last=True))
        assert all(len(b) == 3 for b in batches)
        assert len(batches) == 3

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            list(minibatches(10, 0))


class TestInfiniteSampler:
    def test_batches_have_requested_size(self):
        sampler = InfiniteSampler(10, 4, np.random.default_rng(0))
        for __ in range(20):
            assert len(sampler.next_batch()) == 4

    def test_small_dataset_clamps_batch(self):
        sampler = InfiniteSampler(2, 32, np.random.default_rng(0))
        assert len(sampler.next_batch()) == 2

    def test_epoch_covers_all_indices(self):
        sampler = InfiniteSampler(8, 4, np.random.default_rng(1))
        seen = np.concatenate([sampler.next_batch(), sampler.next_batch()])
        np.testing.assert_array_equal(np.sort(seen), np.arange(8))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            InfiniteSampler(0, 4, np.random.default_rng(0))
