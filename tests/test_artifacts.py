"""Unit tests for the self-healing artifact store (repro.artifacts)."""

import json
import multiprocessing
import os
import zipfile

import numpy as np
import pytest

from repro.artifacts import (ArtifactCorruptError, ArtifactStatus,
                             ArtifactStore, FileLock, LockTimeout,
                             MANIFEST_NAME, atomic_write, file_digest,
                             validate_npz)


def _write_json(store, name, obj):
    return store.write_json(name, obj)


def _read_json(path):
    return json.loads(path.read_text())


class TestAtomicWrite:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "a.txt"
        atomic_write(path, lambda tmp: tmp.write_text("hello"))
        assert path.read_text() == "hello"

    def test_failed_writer_leaves_no_trace(self, tmp_path):
        path = tmp_path / "a.txt"
        path.write_text("original")
        with pytest.raises(RuntimeError, match="boom"):
            atomic_write(path, lambda tmp: (_ for _ in ()).throw(
                RuntimeError("boom")))
        assert path.read_text() == "original"
        assert list(tmp_path.iterdir()) == [path]  # no temp litter

    def test_partial_writer_never_published(self, tmp_path):
        """A writer that dies mid-write (kill -9 analogue) leaves the
        destination untouched: content only appears via os.replace."""
        path = tmp_path / "a.txt"
        path.write_text("original")

        def dies_mid_write(tmp):
            tmp.write_text("part")  # partial content hits only the temp file
            raise KeyboardInterrupt()

        with pytest.raises(KeyboardInterrupt):
            atomic_write(path, dies_mid_write)
        assert path.read_text() == "original"

    def test_stale_tmp_from_killed_process_is_harmless(self, tmp_path):
        """Simulated kill -9: a stale temp file from a dead writer neither
        blocks a new write nor is ever visible at the final path."""
        path = tmp_path / "ckpt.npz"
        stale = path.with_name(f"{path.name}.tmp-99999-1{path.suffix}")
        stale.write_bytes(b"\x00" * 10)  # torn garbage from the dead writer
        atomic_write(path, lambda tmp: np.savez_compressed(tmp, w=np.ones(3)))
        with np.load(path) as archive:
            np.testing.assert_array_equal(archive["w"], np.ones(3))

    def test_npz_writer_keeps_suffix(self, tmp_path):
        """np.savez appends '.npz' when missing — the temp name must already
        end in it or the writer output would land beside the temp path."""
        path = tmp_path / "w.npz"
        atomic_write(path, lambda tmp: np.savez_compressed(tmp, x=np.eye(2)))
        assert validate_npz(path) is None


class TestStaleTmpSweep:
    def test_old_tmp_litter_removed_on_next_write(self, tmp_path):
        store = ArtifactStore(tmp_path)
        stale = tmp_path / "doc.json.tmp-999-1.json"
        stale.write_text("litter from a killed writer")
        old = os.path.getmtime(stale) - 7200
        os.utime(stale, (old, old))
        fresh = tmp_path / "doc.json.tmp-999-2.json"
        fresh.write_text("a live writer's temp")  # recent: must survive
        _write_json(store, "doc.json", {"x": 1})
        assert not stale.exists()
        assert fresh.exists()


class TestClassify:
    def test_missing(self, tmp_path):
        store = ArtifactStore(tmp_path)
        status, reason = store.classify("nope.json")
        assert status is ArtifactStatus.MISSING and reason is None

    def test_valid_without_manifest(self, tmp_path):
        """Pre-store files (like the shipped seed cache) validate by format."""
        store = ArtifactStore(tmp_path)
        (tmp_path / "legacy.json").write_text("{}")
        assert store.classify("legacy.json")[0] is ArtifactStatus.VALID

    def test_empty_file_is_corrupt(self, tmp_path):
        store = ArtifactStore(tmp_path)
        (tmp_path / "empty.npz").write_bytes(b"")
        status, reason = store.classify("empty.npz")
        assert status is ArtifactStatus.CORRUPT
        assert "empty" in reason

    def test_checksum_mismatch_is_corrupt(self, tmp_path):
        store = ArtifactStore(tmp_path)
        _write_json(store, "doc.json", {"x": 1})
        (tmp_path / "doc.json").write_text(json.dumps({"x": 2}))
        status, reason = store.classify("doc.json")
        assert status is ArtifactStatus.CORRUPT
        assert "checksum" in reason

    def test_bad_name_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for name in ("", "../escape.json", "/abs.json"):
            with pytest.raises(ValueError):
                store.path(name)


class TestQuarantine:
    def test_rename_never_delete(self, tmp_path, caplog):
        store = ArtifactStore(tmp_path)
        (tmp_path / "bad.json").write_text("{broken")
        with caplog.at_level("WARNING", logger="repro.artifacts"):
            moved = store.quarantine("bad.json", "broken json")
        assert moved == tmp_path / "bad.json.corrupt"
        assert moved.read_text() == "{broken"  # bytes preserved for forensics
        assert not (tmp_path / "bad.json").exists()
        assert "corrupt-quarantined" in caplog.text

    def test_repeated_quarantines_get_unique_names(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for __ in range(3):
            (tmp_path / "bad.json").write_text("{broken")
            store.quarantine("bad.json", "broken")
        names = sorted(p.name for p in tmp_path.glob("bad.json.corrupt*"))
        assert len(names) == 3 and len(set(names)) == 3

    def test_quarantine_drops_manifest_entry(self, tmp_path):
        store = ArtifactStore(tmp_path)
        _write_json(store, "doc.json", {"x": 1})
        store.quarantine("doc.json", "testing")
        assert store.manifest_entry("doc.json") is None


class TestReadWrite:
    def test_write_records_manifest(self, tmp_path):
        store = ArtifactStore(tmp_path)
        path = _write_json(store, "doc.json", {"x": 1})
        entry = store.manifest_entry("doc.json")
        assert entry["sha256"] == file_digest(path)
        assert entry["size"] == path.stat().st_size

    def test_read_corrupt_quarantines_and_raises(self, tmp_path):
        store = ArtifactStore(tmp_path)
        (tmp_path / "doc.json").write_text("{broken")
        with pytest.raises(ArtifactCorruptError) as excinfo:
            store.read("doc.json", _read_json)
        assert "doc.json" in str(excinfo.value)
        assert excinfo.value.quarantined_to.exists()

    def test_read_missing_raises_file_not_found(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(FileNotFoundError):
            store.read("ghost.json", _read_json)

    def test_reader_content_error_counts_as_corrupt(self, tmp_path):
        """Valid JSON with the wrong schema is still a corrupt artifact."""
        store = ArtifactStore(tmp_path)
        store.write_text("doc.json", "{}")
        with pytest.raises(ArtifactCorruptError):
            store.read("doc.json", lambda p: _read_json(p)["required-key"])

    def test_corrupt_manifest_heals_itself(self, tmp_path):
        store = ArtifactStore(tmp_path)
        _write_json(store, "doc.json", {"x": 1})
        (tmp_path / MANIFEST_NAME).write_text("not json at all")
        # Store still serves the artifact (format validation) and the bad
        # manifest is quarantined, not fatal.
        assert store.read("doc.json", _read_json) == {"x": 1}
        assert list(tmp_path.glob(f"{MANIFEST_NAME}.corrupt*"))


class TestFetch:
    def test_miss_regenerates_and_stores(self, tmp_path, caplog):
        store = ArtifactStore(tmp_path)
        calls = []

        def regenerate():
            calls.append(1)
            return {"built": True}

        with caplog.at_level("INFO", logger="repro.artifacts"):
            value = store.fetch("doc.json", _read_json, regenerate,
                                lambda v, tmp: tmp.write_text(json.dumps(v)))
        assert value == {"built": True} and calls == [1]
        assert "artifact miss" in caplog.text
        # Second fetch hits the cache without regenerating.
        value = store.fetch("doc.json", _read_json, regenerate,
                            lambda v, tmp: tmp.write_text(json.dumps(v)))
        assert value == {"built": True} and calls == [1]

    def test_corrupt_regenerates_with_log(self, tmp_path, caplog):
        store = ArtifactStore(tmp_path)
        (tmp_path / "doc.json").write_text("{broken")
        with caplog.at_level("WARNING", logger="repro.artifacts"):
            value = store.fetch("doc.json", _read_json, lambda: {"ok": 1},
                                lambda v, tmp: tmp.write_text(json.dumps(v)))
        assert value == {"ok": 1}
        assert "corrupt-regenerated" in caplog.text
        assert (tmp_path / "doc.json.corrupt").exists()


def _lock_holder(path, hold_seconds, acquired_event):
    lock = FileLock(path)
    with lock:
        acquired_event.set()
        import time
        time.sleep(hold_seconds)


class TestLocking:
    def test_reports_wait_time(self, tmp_path):
        """A second process contending for the lock blocks until release."""
        path = tmp_path / "x.lock"
        ctx = multiprocessing.get_context("fork")
        acquired = ctx.Event()
        holder = ctx.Process(target=_lock_holder, args=(path, 0.5, acquired))
        holder.start()
        try:
            assert acquired.wait(timeout=10)
            lock = FileLock(path, timeout=10)
            with lock:
                pass
            assert lock.waited > 0.1  # blocked until the holder released
        finally:
            holder.join(timeout=10)

    def test_timeout_raises(self, tmp_path):
        path = tmp_path / "x.lock"
        ctx = multiprocessing.get_context("fork")
        acquired = ctx.Event()
        holder = ctx.Process(target=_lock_holder, args=(path, 2.0, acquired))
        holder.start()
        try:
            assert acquired.wait(timeout=10)
            with pytest.raises(LockTimeout):
                FileLock(path, timeout=0.2).acquire()
        finally:
            holder.join(timeout=10)

    def test_store_lock_scopes_by_name(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with store.lock("a.npz"):
            with store.lock("b.npz"):  # different artifact, no deadlock
                pass


class TestValidators:
    def test_validate_npz_accepts_good_archive(self, tmp_path):
        path = tmp_path / "w.npz"
        np.savez_compressed(path, w=np.ones(4))
        assert validate_npz(path) is None

    def test_validate_npz_names_bad_eocd(self, tmp_path):
        path = tmp_path / "w.npz"
        path.write_bytes(b"PK\x03\x04 definitely not a full zip")
        assert "end-of-central-directory" in validate_npz(path)

    def test_validate_npz_catches_truncated_member(self, tmp_path):
        path = tmp_path / "w.npz"
        np.savez_compressed(path, w=np.arange(1000.0))
        data = path.read_bytes()
        # Corrupt compressed member bytes while keeping the central
        # directory (which lives at the end) intact.
        patched = data[:200] + bytes(32) + data[232:]
        path.write_bytes(patched)
        assert validate_npz(path) is not None
