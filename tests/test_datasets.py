"""Tests for the synthetic benchmark generators (Table 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (CATALOG, Perturber, dataset_names, load_dataset,
                            scaled_counts, spec_for, table2_rows)
from repro.datasets.perturb import (abbreviate_first_name, abbreviate_word,
                                    drop_tokens, jitter_number, typo)
from repro.datasets.vocabularies import expand_pool
from repro.text import tokenize

# Paper Table 2: (pairs, matches, attributes) per dataset key.
TABLE2 = {
    "walmart_amazon": (10242, 962, 5),
    "abt_buy": (9575, 1028, 3),
    "dblp_scholar": (28707, 5347, 4),
    "dblp_acm": (12363, 2220, 4),
    "fodors_zagats": (946, 110, 6),
    "zomato_yelp": (894, 214, 3),
    "itunes_amazon": (532, 132, 8),
    "rotten_imdb": (600, 190, 3),
    "books2": (394, 92, 9),
    "wdc_computers": (1100, 300, 2),
    "wdc_cameras": (1100, 300, 2),
    "wdc_watches": (1100, 300, 2),
    "wdc_shoes": (1100, 300, 2),
}


class TestCatalog:
    def test_all_thirteen_datasets_present(self):
        assert set(dataset_names()) == set(TABLE2)

    def test_full_scale_counts_match_table2(self):
        for key, (pairs, matches, __) in TABLE2.items():
            counts = scaled_counts(CATALOG[key], scale=1.0)
            assert counts["pairs"] == pairs, key
            assert counts["matches"] == matches, key

    @pytest.mark.parametrize("key", sorted(TABLE2))
    def test_attribute_counts_match_table2(self, key):
        ds = load_dataset(key, scale=0.01, seed=0)
        assert ds.num_attributes == TABLE2[key][2]

    def test_aliases_resolve(self):
        assert spec_for("WA").key == "walmart_amazon"
        assert spec_for("dblp-scholar").key == "dblp_scholar"
        assert spec_for("b2").key == "books2"

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            spec_for("imaginary")

    def test_table2_rows_structure(self):
        rows = table2_rows(scale=1.0)
        assert len(rows) == 13
        by_key = {r["key"]: r for r in rows}
        assert by_key["dblp_scholar"]["pairs"] == 28707
        assert by_key["books2"]["attributes"] == 9


class TestGeneration:
    def test_deterministic_given_seed(self):
        a = load_dataset("fz", scale=0.2, seed=5)
        b = load_dataset("fz", scale=0.2, seed=5)
        for pa, pb in zip(a.pairs, b.pairs):
            assert pa.left.attributes == pb.left.attributes
            assert pa.label == pb.label

    def test_different_seeds_differ(self):
        a = load_dataset("fz", scale=0.2, seed=5)
        b = load_dataset("fz", scale=0.2, seed=6)
        assert any(pa.left.attributes != pb.left.attributes
                   for pa, pb in zip(a.pairs, b.pairs))

    def test_match_rate_preserved_at_scale(self):
        ds = load_dataset("dblp_acm", scale=0.05, seed=0)
        paper_rate = TABLE2["dblp_acm"][1] / TABLE2["dblp_acm"][0]
        assert ds.num_matches / ds.num_pairs == pytest.approx(paper_rate,
                                                              rel=0.2)

    def test_minimum_floor_at_tiny_scale(self):
        ds = load_dataset("books2", scale=0.001, seed=0)
        assert ds.num_matches >= 12
        assert ds.num_pairs >= 40

    def test_scale_out_of_range(self):
        with pytest.raises(ValueError):
            load_dataset("fz", scale=0.0)
        with pytest.raises(ValueError):
            load_dataset("fz", scale=1.5)

    def test_matches_share_more_tokens_than_nonmatches(self):
        ds = load_dataset("dblp_acm", scale=0.03, seed=1)

        def overlap(pair):
            a = set(tokenize(pair.left.text()))
            b = set(tokenize(pair.right.text()))
            return len(a & b) / max(len(a | b), 1)

        match_overlap = np.mean([overlap(p) for p in ds if p.label == 1])
        other_overlap = np.mean([overlap(p) for p in ds if p.label == 0])
        assert match_overlap > other_overlap + 0.1

    def test_scholar_side_abbreviates_authors(self):
        ds = load_dataset("dblp_scholar", scale=0.01, seed=0)
        match = next(p for p in ds if p.label == 1
                     and p.right.attributes["authors"])
        first_author = match.right.attributes["authors"].split(",")[0].strip()
        assert len(first_author.split()[0]) == 1  # "m stonebraker" style

    def test_zomato_yelp_is_dirty(self):
        ds = load_dataset("zy", scale=1.0, seed=0)
        nulls = sum(1 for p in ds
                    for v in p.left.attributes.values() if v is None)
        assert nulls > 0  # dirty shift moved values out of columns

    def test_wdc_has_two_attributes_and_long_titles(self):
        ds = load_dataset("wdc_shoes", scale=0.1, seed=0)
        assert ds.num_attributes == 2
        lengths = [len(tokenize(p.left.attributes["title"] or ""))
                   for p in ds.pairs[:50]]
        assert np.mean(lengths) > 6

    def test_cross_domain_vocabularies_nearly_disjoint(self):
        products = load_dataset("ab", scale=0.01, seed=0)
        citations = load_dataset("da", scale=0.01, seed=0)

        def vocab(ds):
            tokens = set()
            for text in ds.texts():
                tokens.update(tokenize(text))
            return {t for t in tokens if t.isalpha()}

        va, vb = vocab(products), vocab(citations)
        jaccard = len(va & vb) / len(va | vb)
        assert jaccard < 0.15

    def test_wdc_categories_share_vocabulary(self):
        a = load_dataset("wdc_computers", scale=0.2, seed=0)
        b = load_dataset("wdc_cameras", scale=0.2, seed=0)

        def vocab(ds):
            tokens = set()
            for text in ds.texts():
                tokens.update(t for t in tokenize(text) if t.isalpha())
            return tokens

        va, vb = vocab(a), vocab(b)
        jaccard = len(va & vb) / len(va | vb)
        # Far above the cross-domain level (< 0.15): shared title vocabulary.
        assert jaccard > 0.3

    @given(st.sampled_from(sorted(TABLE2)), st.integers(0, 3))
    @settings(max_examples=10, deadline=None)
    def test_every_dataset_generates_clean_labels(self, key, seed):
        ds = load_dataset(key, scale=0.01, seed=seed)
        assert ds.is_labeled
        assert 0 < ds.num_matches < ds.num_pairs


class TestPerturbations:
    def test_typo_changes_long_words(self):
        rng = np.random.default_rng(0)
        changed = sum(typo("keyboard", rng) != "keyboard" for __ in range(20))
        assert changed >= 15

    def test_typo_leaves_short_words(self):
        rng = np.random.default_rng(0)
        assert typo("ab", rng) == "ab"

    def test_abbreviate_first_name(self):
        assert abbreviate_first_name("michael stonebraker") == "m stonebraker"
        assert abbreviate_first_name("cher") == "cher"

    def test_abbreviate_word(self):
        assert abbreviate_word("proceedings") == "proc"
        assert abbreviate_word("acm") == "acm"

    def test_drop_tokens_keeps_at_least_one(self):
        rng = np.random.default_rng(0)
        out = drop_tokens("a b c", rate=1.0, rng=rng)
        assert len(out.split()) >= 1

    def test_jitter_number_bounded(self):
        rng = np.random.default_rng(0)
        for __ in range(50):
            assert 90 <= jitter_number(100.0, 0.1, rng) <= 110

    def test_perturber_intensity_zero_is_identity_text(self):
        p = Perturber(0.0)
        rng = np.random.default_rng(0)
        assert p.perturb_text("hello world", rng) == "hello world"

    def test_perturber_null_rate_one_nulls_everything(self):
        p = Perturber(0.0, null_rate=1.0)
        rng = np.random.default_rng(0)
        out = p.apply({"a": "x", "b": "y"}, rng)
        assert out == {"a": None, "b": None}

    def test_perturber_does_not_mutate_input(self):
        attrs = {"a": "hello there", "b": "world"}
        Perturber(1.0, null_rate=0.5, dirty_rate=1.0).apply(
            attrs, np.random.default_rng(0))
        assert attrs == {"a": "hello there", "b": "world"}

    def test_dirty_shift_conserves_values(self):
        p = Perturber(0.0, dirty_rate=1.0)
        rng = np.random.default_rng(3)
        out = p.apply({"a": "x", "b": "y", "c": "z"}, rng)
        joined = " ".join(v for v in out.values() if v)
        assert sorted(joined.split()) == ["x", "y", "z"]
        assert sum(v is None for v in out.values()) == 1

    def test_perturber_rejects_bad_intensity(self):
        with pytest.raises(ValueError):
            Perturber(1.5)

    @given(st.floats(0.0, 1.0), st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_perturb_text_never_empty(self, intensity, seed):
        p = Perturber(intensity)
        rng = np.random.default_rng(seed)
        assert p.perturb_text("alpha beta gamma delta", rng).strip()


class TestVocabularies:
    def test_expand_pool_deterministic(self):
        a = expand_pool(["x"], ["ab", "cd"], 10, seed=3)
        b = expand_pool(["x"], ["ab", "cd"], 10, seed=3)
        assert a == b

    def test_expand_pool_unique(self):
        pool = expand_pool(["x", "x"], ["ab", "cd", "ef"], 20, seed=1)
        assert len(set(pool)) == 20

    def test_seeds_come_first(self):
        pool = expand_pool(["alpha", "beta"], ["ab", "cd", "ef"], 5, seed=0)
        assert pool[:2] == ["alpha", "beta"]

    def test_exhausted_syllables_raise(self):
        # One syllable yields only "abab"/"ababab": asking for more unique
        # words must fail loudly instead of looping forever.
        with pytest.raises(ValueError):
            expand_pool(["alpha"], ["ab"], 5, seed=0)
