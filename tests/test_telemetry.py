"""Tier-1 tests for repro.telemetry: spans, registry, profiler, export.

The two load-bearing guarantees:

* **Observation never changes the observed.**  With the autograd profiler
  and span tracing enabled, training numerics are bit-identical to a
  telemetry-off run — down to the serialized weight bytes.
* **Off means free.**  Uninstalling the profiler restores the original
  ``Tensor`` methods object-for-object, so the fast path has no flag
  checks, no wrappers, no cost.
"""

import io
import json

import numpy as np
import pytest

from repro.nn.tensor import PROFILED_OPS, Tensor
from repro.resilience import Events
from repro.telemetry import (REGISTRY, AutogradProfiler, MetricsRegistry,
                             TelemetrySession, Tracer, load_trace,
                             span_tree_depth, summarize)
from repro.train import TrainConfig, train_source_only

from .conftest import TINY_LM

TINY_TRAIN = TrainConfig(epochs=2, batch_size=8, learning_rate=1e-3,
                         iterations_per_epoch=2, seed=0)


class TestMetricsRegistry:
    def test_counter_gauge_histogram_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(4)
        registry.gauge("depth").set(3.5)
        hist = registry.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        snap = registry.snapshot()
        assert snap["hits"] == 5
        assert snap["depth"] == 3.5
        assert snap["lat"]["count"] == 3
        assert snap["lat"]["max"] == 5.0
        assert snap["lat"]["buckets"]["le_0.1"] == 1
        assert snap["lat"]["buckets"]["le_1"] == 1
        assert snap["lat"]["buckets"]["overflow"] == 1

    def test_name_means_one_kind(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.reset()
        assert len(registry) == 0


class TestTracer:
    def test_disabled_span_still_times_but_leaves_no_record(self):
        tracer = Tracer()
        with tracer.span("quiet") as sp:
            pass
        assert sp.duration >= 0.0
        assert sp.end_s is not None
        assert tracer.records() == []

    def test_nesting_links_parent_ids(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
            tracer.event("ping", detail=1)
        tracer.disable()
        records = {r["name"]: r for r in tracer.records()}
        assert records["grandchild"]["parent"] == records["child"]["id"]
        assert records["child"]["parent"] == records["root"]["id"]
        assert records["root"]["parent"] is None
        # the event fired while only "root" was open
        assert records["ping"]["parent"] == records["root"]["id"]
        assert span_tree_depth(tracer.records()) == 3

    def test_span_nesting_is_per_asyncio_task(self):
        """Regression: interleaved tasks must not corrupt each other's stacks.

        The span stack used to live in ``threading.local``, which every
        asyncio task on the loop thread *shares* — task B's spans parented
        under whatever span task A happened to have open at the await
        point.  With contextvars each task gets its own stack.
        """
        import asyncio

        tracer = Tracer()
        tracer.enable()

        async def worker(name):
            with tracer.span(f"{name}.outer"):
                await asyncio.sleep(0)  # yield so the tasks interleave
                with tracer.span(f"{name}.inner"):
                    await asyncio.sleep(0)
                await asyncio.sleep(0)
                tracer.event(f"{name}.tick")

        async def main():
            await asyncio.gather(worker("a"), worker("b"))

        asyncio.run(asyncio.wait_for(main(), timeout=30))
        tracer.disable()
        records = {r["name"]: r for r in tracer.records()}
        for name in ("a", "b"):
            outer, inner = records[f"{name}.outer"], records[f"{name}.inner"]
            assert inner["parent"] == outer["id"]  # never the *other* task
            assert outer["parent"] is None
            assert records[f"{name}.tick"]["parent"] == outer["id"]

    def test_span_nesting_stays_per_thread(self):
        """Threaded callers keep isolated stacks (contextvars are per-thread
        too) — the asyncio fix must not regress the worker-pool tracing."""
        import threading

        tracer = Tracer()
        tracer.enable()
        barrier = threading.Barrier(2)

        def worker(name):
            with tracer.span(f"{name}.outer"):
                barrier.wait()  # both outers open before either inner
                with tracer.span(f"{name}.inner"):
                    pass

        threads = [threading.Thread(target=worker, args=(name,))
                   for name in ("t1", "t2")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        tracer.disable()
        records = {r["name"]: r for r in tracer.records()}
        for name in ("t1", "t2"):
            assert (records[f"{name}.inner"]["parent"]
                    == records[f"{name}.outer"]["id"])
            assert records[f"{name}.outer"]["parent"] is None

    def test_export_writes_jsonl_with_header(self, tmp_path):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("only", k="v"):
            pass
        tracer.disable()
        path = tracer.export("runx", trace_dir=tmp_path / "traces")
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["type"] == "header"
        assert lines[0]["run"] == "runx"
        assert lines[1]["name"] == "only"
        assert lines[1]["attrs"] == {"k": "v"}


def _train_once():
    """One tiny deterministic training run; returns (result, weight bytes)."""
    from repro.data import target_da_split
    from repro.datasets import load_dataset
    from repro.matcher import MlpMatcher
    from repro.pretrain import fresh_copy, pretrained_lm
    extractor, __ = pretrained_lm(**TINY_LM)
    extractor = fresh_copy(extractor, seed=0)
    matcher = MlpMatcher(extractor.feature_dim, np.random.default_rng(0))
    source = load_dataset("fz", scale=0.1, seed=0)
    valid, test = target_da_split(load_dataset("b2", scale=0.1, seed=0),
                                  np.random.default_rng(1))
    result = train_source_only(extractor, matcher, source, valid, test,
                               TINY_TRAIN)
    buffer = io.BytesIO()
    state = {**{f"e.{k}": v for k, v in
                result.extractor.state_dict().items()},
             **{f"m.{k}": v for k, v in result.matcher.state_dict().items()}}
    np.savez(buffer, **state)
    return result, buffer.getvalue()


class TestProfilerDoesNotPerturb:
    def test_training_is_bit_identical_with_telemetry_on(self, tmp_path):
        baseline, baseline_bytes = _train_once()
        with TelemetrySession("bitcheck", trace_dir=tmp_path / "traces",
                              profile=True) as session:
            traced, traced_bytes = _train_once()
        path = session.export()
        # identical numerics, epoch by epoch...
        assert [r.matching_loss for r in traced.history] == \
            [r.matching_loss for r in baseline.history]
        assert [r.valid_f1 for r in traced.history] == \
            [r.valid_f1 for r in baseline.history]
        assert traced.test_metrics.f1 == baseline.test_metrics.f1
        # ...down to the serialized weight bytes
        assert traced_bytes == baseline_bytes
        # and the run actually was observed: ops recorded, >=3 span levels
        trace = load_trace(path)
        assert {o["op"] for o in trace["ops"]} >= {"matmul", "add"}
        assert span_tree_depth(trace["spans"]) >= 3

    def test_uninstall_restores_identical_methods(self):
        originals = {m: Tensor.__dict__[m] for m in PROFILED_OPS}
        profiler = AutogradProfiler()
        with profiler:
            assert Tensor.__dict__["__matmul__"] is not originals["__matmul__"]
            a = Tensor(np.ones((2, 2)), requires_grad=True)
            (a @ a).sum().backward()
            stats = profiler.stats()
            assert stats["matmul"].calls == 1
            assert stats["matmul"].backward_calls == 1
            assert stats["matmul"].bytes_produced == 32  # 2x2 float64
        for method, original in originals.items():
            assert Tensor.__dict__[method] is original, method

    def test_install_is_idempotent(self):
        profiler = AutogradProfiler()
        profiler.install()
        try:
            wrapped = Tensor.__dict__["__matmul__"]
            profiler.install()  # second install must not double-wrap
            assert Tensor.__dict__["__matmul__"] is wrapped
        finally:
            profiler.uninstall()
        profiler.uninstall()  # idempotent too


class TestEventsRegistryMirror:
    def test_bump_mirrors_to_registry(self):
        before = REGISTRY.snapshot().get("resilience.retries", 0)
        events = Events()
        events.bump("retries")
        events.bump("retries", 2)
        assert events.retries == 3
        assert REGISTRY.snapshot()["resilience.retries"] == before + 3

    def test_derived_records_do_not_mirror(self):
        events = Events(retries=5)
        before = REGISTRY.snapshot().get("resilience.retries", 0)
        __ = events.copy() + events - events
        assert REGISTRY.snapshot().get("resilience.retries", 0) == before

    def test_bad_field_raises(self):
        with pytest.raises(AttributeError):
            Events().bump("not_a_counter")


class TestTelemetrySessionAndSummary:
    def test_export_embeds_metrics_and_renders(self, tmp_path, capsys):
        with TelemetrySession("sess", trace_dir=tmp_path / "traces") as s:
            from repro import telemetry
            with telemetry.span("outer"):
                with telemetry.span("middle"):
                    with telemetry.span("inner", step=0):
                        pass
            REGISTRY.counter("sess.things").inc(7)
        path = s.export()
        trace = load_trace(path)
        assert trace["metrics"]["sess.things"] == 7
        text = summarize(path)
        assert "outer" in text and "middle" in text and "inner" in text
        assert "metrics snapshot" in text

        from repro.cli import main
        assert main(["trace-summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "trace sess" in out

    def test_trace_summary_missing_run_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["trace-summary", "nope",
                     "--trace-dir", str(tmp_path)]) == 1
        assert "no trace found" in capsys.readouterr().err

    def test_session_disables_tracer_on_exit(self, tmp_path):
        from repro.telemetry import TRACER
        with TelemetrySession("onoff", trace_dir=tmp_path):
            assert TRACER.enabled
        assert not TRACER.enabled


class TestServeBenchTelemetry:
    def test_report_embeds_snapshot_and_recovery_counters(self, tmp_path,
                                                          tiny_lm):
        from repro.serve import run_serve_bench
        report = run_serve_bench(
            num_pairs=160, num_workers=2, batch_size=32,
            pipeline_dir=tmp_path / "pipe", output=tmp_path / "bench.json",
            lm_kwargs=TINY_LM, inject_fault="garbage",
            telemetry=True, trace_dir=tmp_path / "traces")
        tel = report["telemetry"]
        assert tel["metrics"]["serve.pairs"] >= 160
        assert tel["metrics"]["serve.batch_seconds"]["count"] >= 1
        # the injected fault's recovery actions reach the same snapshot
        # through Events.bump -> REGISTRY (the migrated export path)
        assert tel["metrics"]["resilience.retries"] >= 1
        assert tel["metrics"]["resilience.garbage"] >= 1
        trace = load_trace(tel["trace"])
        names = {s["name"] for s in trace["spans"]}
        assert {"serve.run", "serve.batch", "serve.schedule"} <= names
        assert span_tree_depth(trace["spans"]) >= 2
        # the same snapshot is in the persisted BENCH_serve.json
        persisted = json.loads((tmp_path / "bench.json").read_text())
        assert persisted["telemetry"]["metrics"]["resilience.garbage"] >= 1
