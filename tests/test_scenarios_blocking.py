"""Blocking recall over cluster-structured corpora.

The serving path's candidate generation must never lose a true match
before the matcher sees it.  These tests pin the documented thresholds at
which both blockers are a strict superset of the corpus's gold same-cluster
cross-side pairs (``ClusterCorpus.true_matches``), across domains and
seeds:

* ``OverlapBlocker(min_overlap=2, stop_fraction=1.0)`` — two shared
  informative tokens, stop-wording disabled (the corpora are small enough
  that frequent tokens are still discriminative);
* ``QGramBlocker(q=3, threshold=0.25)`` — trigram Jaccard at the default
  similarity cutoff.

The perturbation intensities of the dataset specs (~5% token edits, ~10%
formatting noise) leave every same-cluster pair above both bars; a spec or
renderer change that pushes matches below them fails here by name.
"""

import pytest

from repro.blocking import OverlapBlocker, QGramBlocker
from repro.blocking.overlap import blocking_recall
from repro.datasets import generate_corpus, spec_for

#: (blocker factory, documented threshold description)
BLOCKERS = [
    pytest.param(lambda: OverlapBlocker(min_overlap=2, stop_fraction=1.0),
                 id="overlap-min2-nostop"),
    pytest.param(lambda: QGramBlocker(q=3, threshold=0.25),
                 id="qgram-q3-t0.25"),
]

CORPORA = [("fodors_zagats", 0), ("fodors_zagats", 7), ("zomato_yelp", 0)]


@pytest.mark.parametrize("make_blocker", BLOCKERS)
@pytest.mark.parametrize("dataset,seed", CORPORA)
def test_candidates_superset_of_gold_matches(make_blocker, dataset, seed):
    corpus = generate_corpus(spec_for(dataset), seed=seed)
    left, right = corpus.tables()
    truth = set(corpus.true_matches())
    assert truth, "corpus must contain cross-side gold matches"
    candidates = make_blocker().candidates(left, right)
    found = {(p.left.entity_id, p.right.entity_id) for p in candidates}
    missing = truth - found
    assert not missing, (
        f"blocking lost {len(missing)}/{len(truth)} gold matches, "
        f"e.g. {sorted(missing)[:3]}")
    assert blocking_recall(candidates, truth) == 1.0


@pytest.mark.parametrize("dataset,seed", CORPORA[:1])
def test_blocking_still_prunes(dataset, seed):
    """Full recall must not come from emitting the cartesian product."""
    corpus = generate_corpus(spec_for(dataset), seed=seed)
    left, right = corpus.tables()
    cartesian = len(left) * len(right)
    for make_blocker in (lambda: OverlapBlocker(min_overlap=2,
                                                stop_fraction=1.0),
                         lambda: QGramBlocker(q=3, threshold=0.25)):
        kept = len(make_blocker().candidates(left, right))
        assert kept < 0.5 * cartesian, \
            f"blocker kept {kept}/{cartesian} pairs — no pruning"
