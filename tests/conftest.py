"""Shared fixtures: tiny datasets and a session-cached mini pre-trained LM.

All integration tests fine-tune from one tiny MLM checkpoint (cached under
``.cache/``), exactly as the paper's runs all start from one public BERT.
Keep scales small: this reproduction targets single-CPU runtimes.
"""

import os

# Single-CPU box: stop OpenBLAS from spawning contention threads.
os.environ.setdefault("OPENBLAS_NUM_THREADS", "1")
os.environ.setdefault("OMP_NUM_THREADS", "1")

import numpy as np
import pytest

from repro.data import target_da_split
from repro.datasets import load_dataset
from repro.matcher import MlpMatcher
from repro.pretrain import fresh_copy, pretrained_lm

TINY_LM = dict(dim=32, num_layers=1, num_heads=2, max_len=96,
               corpus_scale=0.01, steps=80, seed=0)


@pytest.fixture(scope="session")
def tiny_lm():
    """A small pre-trained transformer shared by the whole test session."""
    extractor, vocab = pretrained_lm(**TINY_LM)
    return extractor, vocab


@pytest.fixture()
def lm_copy(tiny_lm):
    """A fresh fine-tunable copy of the session checkpoint."""
    extractor, __ = tiny_lm
    return fresh_copy(extractor, seed=0)


@pytest.fixture()
def matcher_factory():
    def make(feature_dim, seed=0):
        return MlpMatcher(feature_dim, np.random.default_rng(seed))
    return make


@pytest.fixture(scope="session")
def books_restaurants():
    """A tiny different-domain DA task: Books2 -> Fodors-Zagats."""
    source = load_dataset("b2", scale=0.2, seed=0)
    target = load_dataset("fz", scale=0.2, seed=0)
    valid, test = target_da_split(target, np.random.default_rng(1))
    return source, target.without_labels(), valid, test
