"""Hypothesis property tests for the scale pipeline's invariants.

Three contracts the end-to-end bench's determinism rests on:

* union-find clustering is invariant to edge order and duplication;
* LSH banding is a guaranteed-superset filter: any pair whose MinHash
  signatures disagree in fewer than ``bands`` slots shares at least one
  fully-agreeing band (pigeonhole) and must surface as a candidate;
* the chunked table reader is exactly the eager reader — concatenating
  :func:`iter_entity_table` chunks reproduces :func:`load_entity_table`
  for any chunk size.
"""

import tempfile
from pathlib import Path

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.data import (Entity, iter_entity_table, load_entity_table,
                        save_entity_table)
from repro.scale import MinHasher, ShardedBlocker, UnionFind
from repro.scale.cluster import canonical_clusters

SETTINGS = settings(max_examples=50, deadline=None)

ENTITY_IDS = st.sampled_from([f"e{i}" for i in range(12)])
EDGES = st.lists(st.tuples(ENTITY_IDS, ENTITY_IDS), max_size=30)

WORDS = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1,
                max_size=6)
TOKEN_SETS = st.sets(WORDS, min_size=1, max_size=8)

#: Attribute values for the chunk round-trip: empty cells decode as None,
#: so generated values are either None or non-empty printable text (commas
#: and quotes included — the csv layer must cope).
VALUES = st.one_of(st.none(), st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz ,\"'0123456789", min_size=1,
    max_size=12).filter(lambda s: s.strip(" ") == s))


class TestUnionFindInvariance:
    @SETTINGS
    @given(EDGES, st.randoms(use_true_random=False))
    def test_partition_invariant_under_permutation_and_duplication(
            self, edges, rnd):
        reference = UnionFind()
        for a, b in edges:
            reference.union(a, b)

        shuffled = edges + rnd.choices(edges, k=len(edges)) if edges else []
        rnd.shuffle(shuffled)
        other = UnionFind()
        for a, b in shuffled:
            if rnd.random() < 0.5:  # edge direction must not matter either
                a, b = b, a
            other.union(a, b)

        assert canonical_clusters(reference) == canonical_clusters(other)

    @SETTINGS
    @given(EDGES)
    def test_canonical_id_is_smallest_member(self, edges):
        dsu = UnionFind()
        for a, b in edges:
            dsu.union(a, b)
        assignments = canonical_clusters(dsu)
        for members in dsu.components().values():
            expected = min(members)
            assert all(assignments[m] == expected for m in members)


class TestLshSupersetGuarantee:
    @settings(max_examples=15, deadline=None)
    @given(st.lists(TOKEN_SETS, min_size=1, max_size=6),
           st.lists(TOKEN_SETS, min_size=1, max_size=6),
           st.integers(min_value=0, max_value=3),
           st.integers(min_value=1, max_value=3))
    def test_pairs_sharing_a_band_are_always_candidates(
            self, left_sets, right_sets, seed, shard_size):
        bands, rows = 8, 2
        hasher = MinHasher(bands=bands, rows=rows, seed=seed)
        left_sigs = hasher.signatures(left_sets)
        right_sigs = hasher.signatures(right_sets)

        blocker = ShardedBlocker(mode="minhash", bands=bands, rows=rows,
                                 seed=seed, shard_size=shard_size,
                                 chunk_size=2)
        left = [Entity(f"a{i}", {"text": " ".join(sorted(tokens))})
                for i, tokens in enumerate(left_sets)]
        right = [Entity(f"b{j}", {"text": " ".join(sorted(tokens))})
                 for j, tokens in enumerate(right_sets)]
        candidates = {(p.left.entity_id, p.right.entity_id)
                      for p in blocker.candidates(left, right)}

        for i in range(len(left_sets)):
            for j in range(len(right_sets)):
                disagreements = int((left_sigs[i] != right_sigs[j]).sum())
                if disagreements < bands:  # pigeonhole: one band agrees
                    assert (f"a{i}", f"b{j}") in candidates

    @settings(max_examples=15, deadline=None)
    @given(TOKEN_SETS, st.integers(min_value=0, max_value=3))
    def test_identical_token_sets_always_candidates(self, tokens, seed):
        text = " ".join(sorted(tokens))
        blocker = ShardedBlocker(mode="minhash", bands=8, rows=2, seed=seed,
                                 shard_size=1)
        candidates = blocker.candidates([Entity("a0", {"text": text})],
                                        [Entity("b0", {"text": text})])
        assert [(p.left.entity_id, p.right.entity_id)
                for p in candidates] == [("a0", "b0")]


class TestChunkedReaderIdentity:
    @SETTINGS
    @given(st.lists(st.tuples(VALUES, VALUES), min_size=1, max_size=20),
           st.integers(min_value=1, max_value=25))
    def test_chunks_concatenate_to_eager_table(self, rows, chunk_size):
        entities = [Entity(f"e{i:03d}", {"name": name, "city": city})
                    for i, (name, city) in enumerate(rows)]
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "table.csv"
            assert save_entity_table(entities, path) == len(entities)

            chunks = list(iter_entity_table(path, chunk_size=chunk_size))
            assert all(0 < len(chunk) <= chunk_size for chunk in chunks)
            assert [e for chunk in chunks for e in chunk] \
                == load_entity_table(path) == entities
