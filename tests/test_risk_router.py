"""Risk router: band-edge determinism, annotation-only contract, queue wiring.

The routing invariant under test: the router annotates decisions, never
mutates them, and the half-open band means a probability sitting exactly
on a boundary routes the same way every time on every platform.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import Entity, EntityPair
from repro.pipeline import MatchDecision
from repro.risk import (AUTO_MATCH, AUTO_NON_MATCH, REVIEW, Calibrator,
                        ReviewQueue, RiskBand, RiskRouter)


def _pair(i):
    return EntityPair(Entity(f"l{i}", {"name": f"left {i}"}),
                      Entity(f"r{i}", {"name": f"right {i}"}))


def _decision(i, probability):
    return MatchDecision(left_id=f"l{i}", right_id=f"r{i}",
                         probability=probability)


def _route(probabilities, band=None, queue=None, calibrator=None):
    router = RiskRouter(band=band or RiskBand(0.25, 0.75), queue=queue)
    pairs = [_pair(i) for i in range(len(probabilities))]
    decisions = [_decision(i, p) for i, p in enumerate(probabilities)]
    return router, router.route(pairs, decisions, calibrator, "digest", "d")


class TestRiskBand:
    def test_defaults(self):
        band = RiskBand()
        assert (band.low, band.high) == (0.25, 0.75)

    def test_validation(self):
        with pytest.raises(ValueError):
            RiskBand(0.8, 0.2)
        with pytest.raises(ValueError):
            RiskBand(-0.1, 0.5)
        with pytest.raises(ValueError):
            RiskBand(0.5, 1.5)

    def test_degenerate_band_reviews_nothing(self):
        band = RiskBand(0.5, 0.5)  # empty half-open interval
        assert not band.needs_review(0.5)

    def test_from_spec(self):
        band = RiskBand.from_spec("0.2:0.8")
        assert (band.low, band.high) == (0.2, 0.8)
        with pytest.raises(ValueError, match="LOW:HIGH"):
            RiskBand.from_spec("0.5")

    def test_edges_are_half_open(self):
        band = RiskBand(0.25, 0.75)
        assert band.needs_review(0.25)       # low edge reviews
        assert not band.needs_review(0.75)   # high edge auto-decides
        assert band.needs_review(np.nextafter(0.75, 0.0))
        assert not band.needs_review(np.nextafter(0.25, 0.0))


class TestRouting:
    def test_three_way_split(self):
        __, routed = _route([0.1, 0.3, 0.6, 0.9])
        assert [r.decision for r in routed] == \
            [AUTO_NON_MATCH, REVIEW, REVIEW, AUTO_MATCH]

    def test_decisions_never_mutated(self):
        probabilities = [0.1, 0.5, 0.9]
        decisions = [_decision(i, p) for i, p in enumerate(probabilities)]
        before = [(d.left_id, d.right_id, d.probability) for d in decisions]
        router = RiskRouter(band=RiskBand(0.0, 1.0))
        router.route([_pair(i) for i in range(3)], decisions,
                     None, "digest", "d")
        assert [(d.left_id, d.right_id, d.probability)
                for d in decisions] == before

    def test_confidence_is_symmetric(self):
        __, routed = _route([0.1, 0.9])
        assert routed[0].confidence == pytest.approx(0.9)
        assert routed[1].confidence == pytest.approx(0.9)

    def test_calibrator_moves_banding_not_decisions(self):
        # A strong calibrator pulls 0.6 down into confident non-match
        # territory — the annotation changes, the decision label derived
        # from the raw probability does not.
        calibrator = Calibrator(a=4.0, b=0.0)
        q = float(calibrator.calibrate([0.6])[0])
        assert q > 0.75  # sharpened out of the default band
        __, routed = _route([0.6], calibrator=calibrator)
        assert routed[0].decision == AUTO_MATCH
        assert routed[0].calibrated == pytest.approx(q)
        __, unrouted = _route([0.6])
        assert unrouted[0].decision == REVIEW  # raw 0.6 sits in the band

    def test_review_items_land_in_queue(self, tmp_path):
        queue = ReviewQueue(tmp_path / "q")
        router, routed = _route([0.1, 0.5, 0.9], queue=queue)
        assert [r.decision for r in routed] == \
            [AUTO_NON_MATCH, REVIEW, AUTO_MATCH]
        pending = queue.pending()
        assert len(pending) == 1
        item = pending[0].item
        assert item["probability"] == 0.5
        assert item["digest"] == "digest"
        assert item["left"]["id"] == "l1"
        assert item["label"] is None

    def test_length_mismatch_rejected(self):
        router = RiskRouter()
        with pytest.raises(ValueError, match="length"):
            router.route([_pair(0)], [], None, None, "d")

    def test_stats(self, tmp_path):
        queue = ReviewQueue(tmp_path / "q")
        router, __ = _route([0.1, 0.5, 0.6, 0.9], queue=queue)
        stats = router.stats()
        assert stats["band"] == [0.25, 0.75]
        assert stats["counts"] == {AUTO_MATCH: 1, AUTO_NON_MATCH: 1,
                                   REVIEW: 2}
        assert stats["review_rate"] == pytest.approx(0.5)
        assert stats["queue"]["pending"] == 2

    def test_wire_format(self):
        __, routed = _route([0.9])
        wire = routed[0].to_wire()
        assert set(wire) == {"decision", "confidence", "calibrated"}
        assert wire["decision"] == AUTO_MATCH


class TestRoutingProperties:
    @settings(max_examples=100, deadline=None)
    @given(low=st.floats(0.0, 1.0), high=st.floats(0.0, 1.0),
           offset=st.integers(-2, 2))
    def test_boundary_probabilities_route_deterministically(self, low, high,
                                                            offset):
        """Probabilities at and one ulp around both band edges route the
        same way twice — no float luck at the boundaries."""
        if low > high:
            low, high = high, low
        band = RiskBand(low, high)
        for edge in (low, high):
            q = edge
            for __ in range(abs(offset)):
                q = np.nextafter(q, 0.0 if offset < 0 else 1.0)
            q = float(min(max(q, 0.0), 1.0))
            first = band.needs_review(q)
            assert band.needs_review(q) == first
            # the half-open contract, spelled out:
            assert first == (low <= q < high)

    @settings(max_examples=50, deadline=None)
    @given(probabilities=st.lists(
        st.floats(0.0, 1.0, allow_nan=False), min_size=1, max_size=20))
    def test_partition_is_total_and_consistent(self, probabilities):
        """Every decision gets exactly one outcome, consistent with the
        band and the raw match cut."""
        band = RiskBand(0.25, 0.75)
        __, routed = _route(probabilities, band=band)
        for p, annotation in zip(probabilities, routed):
            if band.needs_review(p):
                assert annotation.decision == REVIEW
            elif p >= 0.5:
                assert annotation.decision == AUTO_MATCH
            else:
                assert annotation.decision == AUTO_NON_MATCH
            assert annotation.confidence == pytest.approx(max(p, 1.0 - p))
