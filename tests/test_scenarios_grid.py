"""Tier-1 unit tests for the cluster corpus and the 4x2 scenario grid.

Fast, training-free coverage of :mod:`repro.datasets.generator` and
:mod:`repro.scenarios.grid`: corpus structure and determinism, the grid's
shapes / skew / label semantics per scenario, the adaptation target, and
the scenario table renderer.  The training-heavy golden tier lives in
``test_scenarios_golden.py`` (marker ``scenarios``).
"""

import numpy as np
import pytest

from repro.datasets import ClusterCorpus, generate_corpus, spec_for
from repro.experiments import format_scenario_table
from repro.scenarios import (DEFAULT_PAIRS, POSITIVE_RATES, SCENARIOS,
                             VARIANTS, adaptation_dataset, build_grid,
                             build_scenario, grid_stats)
from repro.scenarios.harness import evaluate_grid


@pytest.fixture(scope="module")
def corpus() -> ClusterCorpus:
    return generate_corpus(spec_for("fodors_zagats"), num_families=16,
                           family_size=3, seed=0)


def _pair_ids(dataset):
    return [(p.left.entity_id, p.right.entity_id, p.label)
            for p in dataset.pairs]


class TestClusterCorpus:
    def test_structure(self, corpus):
        stats = corpus.describe()
        assert stats["families"] == 16
        assert stats["clusters"] == 16 * 3
        assert stats["entities"] == len(corpus.members)
        assert stats["side_a_entities"] + stats["side_b_entities"] == \
            stats["entities"]
        # Renderings per cluster stay within the configured band.
        for cluster_id in corpus.cluster_ids:
            assert 2 <= len(corpus.members_of(cluster_id)) <= 4

    def test_entity_ids_are_unique_and_carry_no_cluster_attribute(
            self, corpus):
        ids = [m.entity.entity_id for m in corpus.members]
        assert len(ids) == len(set(ids))
        # The label ground truth must never leak into the rendered record.
        for member in corpus.members:
            assert "cluster_id" not in member.entity.attributes

    def test_open_clusters_partition_the_corpus(self, corpus):
        seen = {m.cluster_id for m in corpus.seen_members()}
        open_ = {m.cluster_id for m in corpus.open_members()}
        assert seen.isdisjoint(open_)
        assert open_ == set(corpus.open_cluster_ids)
        assert seen | open_ == set(corpus.cluster_ids)

    def test_open_worlds_hold_out_whole_families(self, corpus):
        """No family straddles the seen/open boundary (no sibling leakage)."""
        open_families = {m.family_id for m in corpus.open_members()}
        seen_families = {m.family_id for m in corpus.seen_members()}
        assert open_families.isdisjoint(seen_families)

    def test_label_is_cluster_equality(self, corpus):
        rng = np.random.default_rng(0)
        members = corpus.members
        for __ in range(200):
            a = members[int(rng.integers(len(members)))]
            b = members[int(rng.integers(len(members)))]
            assert corpus.label(a, b) == int(a.cluster_id == b.cluster_id)

    def test_true_matches_are_cross_side_same_cluster(self, corpus):
        truth = set(corpus.true_matches())
        assert truth
        by_id = {m.entity.entity_id: m for m in corpus.members}
        for left_id, right_id in truth:
            left, right = by_id[left_id], by_id[right_id]
            assert left.side == "a" and right.side == "b"
            assert left.cluster_id == right.cluster_id

    def test_generation_is_deterministic(self, corpus):
        again = generate_corpus(spec_for("fodors_zagats"), num_families=16,
                                family_size=3, seed=0)
        assert [m.entity.entity_id for m in again.members] == \
            [m.entity.entity_id for m in corpus.members]
        assert again.open_cluster_ids == corpus.open_cluster_ids
        other = generate_corpus(spec_for("fodors_zagats"), num_families=16,
                                family_size=3, seed=1)
        assert [m.entity.entity_id for m in other.members] != \
            [m.entity.entity_id for m in corpus.members] or \
            other.members[0].entity.attributes != \
            corpus.members[0].entity.attributes

    def test_generation_validation(self):
        spec = spec_for("fodors_zagats")
        with pytest.raises(ValueError):
            generate_corpus(spec, num_families=1)
        with pytest.raises(ValueError):
            generate_corpus(spec, family_size=0)
        with pytest.raises(ValueError):
            generate_corpus(spec, renderings=(4, 2))
        with pytest.raises(ValueError):
            generate_corpus(spec, open_family_fraction=0.0)


class TestScenarioGrid:
    def test_grid_shape_and_keys(self, corpus):
        grid = build_grid(corpus, num_pairs=80, seed=0)
        assert set(grid) == {(s, v) for s in SCENARIOS for v in VARIANTS}
        for (scenario, variant), cell in grid.items():
            assert cell.scenario == scenario
            assert cell.variant == variant
            assert cell.key == f"{scenario}/{variant}"

    def test_positive_rates_are_exact(self, corpus):
        grid = build_grid(corpus, num_pairs=80, seed=0)
        for cell in grid.values():
            want = POSITIVE_RATES[cell.variant]
            # The negative count is derived from the realized positives, so
            # the rate lands within one pair of the target.
            assert abs(cell.positive_rate - want) < 1.5 / len(cell.dataset)

    def test_labels_match_cluster_ground_truth(self, corpus):
        grid = build_grid(corpus, num_pairs=80, seed=0)
        for cell in grid.values():
            for pair in cell.dataset.pairs:
                same = (corpus.cluster_of(pair.left.entity_id)
                        == corpus.cluster_of(pair.right.entity_id))
                assert pair.label == int(same), cell.key

    def test_record_linking_is_strictly_cross_side(self, corpus):
        for variant in VARIANTS:
            cell = build_scenario(corpus, "record_linking", variant,
                                  num_pairs=80, seed=0)
            by_id = {m.entity.entity_id: m for m in corpus.members}
            for pair in cell.dataset.pairs:
                assert by_id[pair.left.entity_id].side == "a"
                assert by_id[pair.right.entity_id].side == "b"

    def test_cluster_matching_negatives_are_family_siblings(self, corpus):
        cell = build_scenario(corpus, "cluster_matching", "balanced",
                              num_pairs=80, seed=0)
        by_id = {m.entity.entity_id: m for m in corpus.members}
        negatives = [p for p in cell.dataset.pairs if p.label == 0]
        assert negatives
        for pair in negatives:
            left, right = by_id[pair.left.entity_id], \
                by_id[pair.right.entity_id]
            assert left.family_id == right.family_id
            assert left.cluster_id != right.cluster_id

    def test_open_matching_touches_an_open_cluster_every_pair(self, corpus):
        for variant in VARIANTS:
            cell = build_scenario(corpus, "open_matching", variant,
                                  num_pairs=80, seed=0)
            open_ids = corpus.open_cluster_ids
            for pair in cell.dataset.pairs:
                touched = {corpus.cluster_of(pair.left.entity_id),
                           corpus.cluster_of(pair.right.entity_id)}
                assert touched & open_ids, \
                    "open-matching pair with no unseen entity"

    def test_grid_is_deterministic(self, corpus):
        first = build_grid(corpus, num_pairs=80, seed=0)
        second = build_grid(corpus, num_pairs=80, seed=0)
        for key in first:
            assert _pair_ids(first[key].dataset) == \
                _pair_ids(second[key].dataset)
        reseeded = build_grid(corpus, num_pairs=80, seed=1)
        assert any(_pair_ids(first[key].dataset) !=
                   _pair_ids(reseeded[key].dataset) for key in first)

    def test_cells_use_disjoint_seed_streams(self, corpus):
        grid = build_grid(corpus, num_pairs=80, seed=0)
        streams = {key: tuple(_pair_ids(cell.dataset))
                   for key, cell in grid.items()}
        assert len(set(streams.values())) == len(streams)

    def test_scenario_validation(self, corpus):
        with pytest.raises(ValueError):
            build_scenario(corpus, "unknown")
        with pytest.raises(ValueError):
            build_scenario(corpus, "vanilla", "skewed")
        with pytest.raises(ValueError):
            build_scenario(corpus, "vanilla", num_pairs=4)

    def test_grid_stats_shape(self, corpus):
        grid = build_grid(corpus, num_pairs=80, seed=0)
        stats = grid_stats(grid)
        assert set(stats) == {cell.key for cell in grid.values()}
        for entry in stats.values():
            assert {"scenario", "variant", "pairs", "matches",
                    "positive_rate", "target_positive_rate"} <= set(entry)


class TestAdaptationDataset:
    def test_shape_rate_and_seen_only(self, corpus):
        dataset = adaptation_dataset(corpus, num_pairs=120, seed=0)
        rate = dataset.num_matches / len(dataset)
        assert abs(rate - POSITIVE_RATES["balanced"]) < 0.02
        open_ids = corpus.open_cluster_ids
        for pair in dataset.pairs:
            assert corpus.cluster_of(pair.left.entity_id) not in open_ids
            assert corpus.cluster_of(pair.right.entity_id) not in open_ids

    def test_deterministic(self, corpus):
        a = adaptation_dataset(corpus, num_pairs=120, seed=0)
        b = adaptation_dataset(corpus, num_pairs=120, seed=0)
        assert _pair_ids(a) == _pair_ids(b)


class TestEvaluateGridAndTable:
    def test_evaluate_grid_scores_every_cell(self, corpus, lm_copy,
                                             matcher_factory):
        grid = build_grid(corpus, num_pairs=20, seed=0)
        matcher = matcher_factory(lm_copy.feature_dim)
        cells = evaluate_grid("noda", lm_copy, matcher, grid)
        assert len(cells) == len(grid)
        assert [c.key for c in cells] == [c.key for c in grid.values()]
        for cell in cells:
            assert 0.0 <= cell.precision <= 1.0
            assert 0.0 <= cell.recall <= 1.0
            assert 0.0 <= cell.f1 <= 1.0
            assert cell.num_pairs == grid[(cell.scenario,
                                           cell.variant)].dataset.num_pairs

    def test_format_scenario_table(self):
        scores = {"mmd": {"vanilla/balanced": {"precision": 1.0,
                                               "recall": 0.5, "f1": 0.667},
                          "open_matching/imbalanced": {"precision": 0.2,
                                                       "recall": 0.1,
                                                       "f1": 0.133}}}
        text = format_scenario_table(scores)
        assert "mmd" in text
        assert "vanilla/bal" in text
        assert "open/imb" in text
        assert "0.667" in text and "0.133" in text
        # Missing cells render as dashes, not crashes.
        scores["grl"] = {"vanilla/balanced": {"f1": 0.5}}
        assert "-" in format_scenario_table(scores)
