"""Scenario-grid golden tier: per-scenario F1 numerics, frozen.

Each test replays the pinned recipe of :mod:`repro.scenarios.regression`
(tiny cached LM, six epochs, a 16-family cluster corpus, the full 4x2 grid)
and compares every cell's precision/recall/F1 — plus the adaptation
validation F1 — against the blessed snapshot in
``tests/golden/scenarios_<aligner>.json`` to 1e-6.  A change anywhere in
the corpus generator, the grid sampler, an aligner, or the evaluation path
that moves any scenario's numbers fails here by cell and field.

After an *intentional* numeric change, re-bless with::

    python scripts/refresh_goldens.py --scenarios

on the CI reference platform (goldens pin BLAS summation order).
"""

import pytest

from repro.scenarios.regression import (compare_scenario_runs,
                                        load_scenario_golden,
                                        scenario_golden_path,
                                        scenario_golden_run)
from repro.train.regression import GOLDEN_ALIGNERS

pytestmark = pytest.mark.scenarios


@pytest.mark.parametrize("aligner", GOLDEN_ALIGNERS)
def test_scenario_grid_matches_golden(aligner):
    path = scenario_golden_path(aligner)
    assert path.exists(), (
        f"no scenario golden for {aligner!r}; generate it with "
        f"`python scripts/refresh_goldens.py --scenarios`")
    expected = load_scenario_golden(aligner)
    actual = scenario_golden_run(aligner)
    problems = compare_scenario_runs(expected, actual)
    assert not problems, (
        f"{aligner} scenario numerics drifted from {path}:\n  "
        + "\n  ".join(problems)
        + "\nIf this change is intentional, re-bless with "
          "`python scripts/refresh_goldens.py --scenarios`.")


def test_scenario_golden_set_is_complete():
    """Every aligner in the design space has a blessed scenario grid."""
    missing = [a for a in GOLDEN_ALIGNERS
               if not scenario_golden_path(a).exists()]
    assert not missing, f"missing scenario goldens: {missing}"


def test_golden_payloads_cover_the_full_grid():
    """Each blessed snapshot pins all eight (scenario, variant) cells."""
    from repro.scenarios import SCENARIOS, VARIANTS
    for aligner in GOLDEN_ALIGNERS:
        payload = load_scenario_golden(aligner)
        keys = [(c["scenario"], c["variant"]) for c in payload["cells"]]
        assert keys == [(s, v) for s in SCENARIOS for v in VARIANTS], aligner
