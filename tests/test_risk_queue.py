"""Durable review queue: crash-safety, exactly-once dequeue, corruption.

The property tests model the real consumer protocol: arbitrary
interleavings of appends, acks, and simulated crashes (reconstructing the
queue object from disk, which is all a ``kill -9`` leaves behind) must
deliver every item exactly once, in order.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.artifacts import QUARANTINE_SUFFIX
from repro.risk import ReviewQueue
from repro.risk.adapt import corrupt_tail_segment
from repro.telemetry import REGISTRY


def _items(count, start=0):
    return [{"payload": i} for i in range(start, start + count)]


class TestReviewQueueBasics:
    def test_append_assigns_monotone_seqs(self, tmp_path):
        queue = ReviewQueue(tmp_path / "q")
        assert queue.append(_items(3)) == [0, 1, 2]
        assert queue.append(_items(2, start=3)) == [3, 4]
        assert [r.seq for r in queue.pending()] == [0, 1, 2, 3, 4]

    def test_empty_queue(self, tmp_path):
        queue = ReviewQueue(tmp_path / "q")
        assert queue.pending() == []
        assert queue.acked_through() == -1
        assert len(queue) == 0
        assert queue.append([]) == []

    def test_pending_is_non_destructive(self, tmp_path):
        queue = ReviewQueue(tmp_path / "q")
        queue.append(_items(4))
        assert len(queue.pending()) == 4
        assert len(queue.pending()) == 4  # reading consumes nothing

    def test_ack_is_forward_only_and_idempotent(self, tmp_path):
        queue = ReviewQueue(tmp_path / "q")
        queue.append(_items(5))
        queue.ack(2)
        assert [r.seq for r in queue.pending()] == [3, 4]
        queue.ack(2)   # re-ack: no-op
        queue.ack(0)   # older offset: no-op, cursor never rewinds
        assert queue.acked_through() == 2
        queue.ack(4)
        assert queue.pending() == []

    def test_segments_roll_at_capacity(self, tmp_path):
        queue = ReviewQueue(tmp_path / "q", segment_max_items=3)
        queue.append(_items(8))
        assert len(queue._segment_names()) == 3
        queue.append(_items(1, start=8))
        # item 8 fills segment 2 (seqs 6..8) before a new segment starts
        assert len(queue._segment_names()) == 3
        assert [r.seq for r in queue.pending()] == list(range(9))

    def test_replay_after_simulated_crash(self, tmp_path):
        producer = ReviewQueue(tmp_path / "q")
        producer.append(_items(6))
        producer.ack(1)
        # kill -9: all that survives is the directory
        replayed = ReviewQueue(tmp_path / "q")
        assert [r.seq for r in replayed.pending()] == [2, 3, 4, 5]
        assert replayed.next_seq() == 6

    def test_items_round_trip_payloads(self, tmp_path):
        queue = ReviewQueue(tmp_path / "q")
        payload = {"left": {"id": "l0", "attributes": {"name": "a"}},
                   "probability": 0.5, "label": None}
        queue.append([payload])
        assert queue.pending()[0].item == payload

    def test_stats_shape(self, tmp_path):
        queue = ReviewQueue(tmp_path / "q", segment_max_items=2)
        queue.append(_items(5))
        queue.ack(0)
        stats = queue.stats()
        assert stats["segments"] == 3
        assert stats["pending"] == 4
        assert stats["acked_through"] == 0
        assert stats["corrupt_segments"] == []

    def test_bad_segment_cap_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ReviewQueue(tmp_path / "q", segment_max_items=0)


class TestReviewQueueCorruption:
    def test_corrupt_segment_quarantined_loudly(self, tmp_path):
        queue = ReviewQueue(tmp_path / "q", segment_max_items=4)
        queue.append(_items(6))  # two segments
        name = corrupt_tail_segment(queue)
        assert name is not None
        before = REGISTRY.counter("risk.queue.corrupt_segments").value
        fresh = ReviewQueue(tmp_path / "q", segment_max_items=4)
        pending = fresh.pending()
        # the intact first segment still replays; the rotted tail is lost
        # loudly, never silently served
        assert [r.seq for r in pending] == [0, 1, 2, 3]
        assert name in fresh.stats()["corrupt_segments"]
        assert REGISTRY.counter("risk.queue.corrupt_segments").value > before
        quarantined = list((tmp_path / "q").glob(f"*{QUARANTINE_SUFFIX}*"))
        assert quarantined, "evidence file must be preserved"

    def test_append_after_quarantined_tail_keeps_seqs_monotone(self, tmp_path):
        queue = ReviewQueue(tmp_path / "q", segment_max_items=4)
        queue.append(_items(6))  # seqs 0..5, tail segment holds 4..5
        corrupt_tail_segment(queue)
        fresh = ReviewQueue(tmp_path / "q", segment_max_items=4)
        assigned = fresh.append(_items(3, start=6))
        # numbering restarts at the damaged segment's boundary (4), so no
        # live seq ever collides with a surviving one
        assert assigned == [4, 5, 6]
        assert [r.seq for r in fresh.pending()] == [0, 1, 2, 3, 4, 5, 6]

    def test_corrupt_cursor_redelivers(self, tmp_path):
        queue = ReviewQueue(tmp_path / "q")
        queue.append(_items(3))
        queue.ack(1)
        (tmp_path / "q" / "cursor.json").write_text("{ torn")
        fresh = ReviewQueue(tmp_path / "q")
        # at-least-once floor: a rotten cursor re-delivers rather than
        # losing items
        assert fresh.acked_through() == -1
        assert [r.seq for r in fresh.pending()] == [0, 1, 2]


class TestReviewQueueProperties:
    @settings(max_examples=25, deadline=None)
    @given(ops=st.lists(
        st.one_of(
            st.tuples(st.just("append"), st.integers(1, 5)),
            st.tuples(st.just("consume"), st.integers(1, 5)),
            st.tuples(st.just("crash"), st.just(0)),
        ), min_size=1, max_size=12))
    def test_exactly_once_in_order_across_crashes(self, tmp_path_factory,
                                                  ops):
        """Any append/consume/crash interleaving delivers each item exactly
        once, in seq order, with no gaps."""
        root = tmp_path_factory.mktemp("prop") / "q"
        queue = ReviewQueue(root, segment_max_items=3)
        next_payload = 0
        consumed = []
        for op, count in ops:
            if op == "append":
                items = _items(count, start=next_payload)
                next_payload += count
                seqs = queue.append(items)
                assert seqs == sorted(seqs)
            elif op == "consume":
                pending = queue.pending()[:count]
                if pending:
                    consumed.extend(r.item["payload"] for r in pending)
                    queue.ack(pending[-1].seq)
            else:  # crash: only the directory survives
                queue = ReviewQueue(root, segment_max_items=3)
        # drain whatever is left after the final op
        tail = queue.pending()
        consumed.extend(r.item["payload"] for r in tail)
        assert consumed == list(range(next_payload))

    @settings(max_examples=25, deadline=None)
    @given(batches=st.lists(st.integers(1, 7), min_size=1, max_size=6),
           cap=st.integers(1, 5))
    def test_segment_invariant(self, tmp_path_factory, batches, cap):
        """Segment ``i`` holds exactly the seqs in [i*cap, (i+1)*cap)."""
        root = tmp_path_factory.mktemp("seg") / "q"
        queue = ReviewQueue(root, segment_max_items=cap)
        total = 0
        for count in batches:
            queue.append(_items(count, start=total))
            total += count
        for name in queue._segment_names():
            index = int(name[len("segment-"):-len(".jsonl")])
            records = queue._read_segment(name)
            seqs = [r["seq"] for r in records]
            assert seqs == sorted(seqs)
            assert all(index * cap <= s < (index + 1) * cap for s in seqs)


class TestSegmentFormat:
    def test_segments_are_plain_jsonl(self, tmp_path):
        # The on-disk format is greppable JSONL — an operator can read the
        # queue with standard tools.
        queue = ReviewQueue(tmp_path / "q")
        queue.append(_items(2))
        text = (tmp_path / "q" / "segment-00000000.jsonl").read_text()
        records = [json.loads(line) for line in text.splitlines()]
        assert [r["seq"] for r in records] == [0, 1]
