"""Guardrailed re-adaptation: canary gate, crash replay, fault injection.

The promotion protocol under test: a candidate only ever reaches serving
through the canary gate, a worker crash anywhere before the ack replays
the same items to exactly one promotion, and a poisoned fine-tune (NaN
divergence) is archived while the incumbent keeps serving untouched.
"""

import numpy as np
import pytest

from repro.artifacts import ArtifactStore
from repro.data import ERDataset
from repro.pipeline import ERPipeline
from repro.resilience import ChaosConfig, Fault
from repro.risk import ReviewQueue, RiskBand, RiskRouter
from repro.risk.adapt import (PromotionCrash, ReAdaptConfig,
                              ReAdaptationWorker, equality_oracle)
from repro.serve import SequentialScorer, synthetic_candidates

pytestmark = pytest.mark.risk

#: Gate thresholds loose enough that a one-epoch fine-tune of a random
#: tiny matcher always passes — these tests pin the *protocol*, the tight
#: gate is exercised by the rejection test explicitly.
LAX = dict(min_items=8, epochs=1, epsilon_f1=1.0, epsilon_ece=1.0)


class _Registry:
    """Publish-recording stub standing in for ModelRegistry/DaemonClient."""

    def __init__(self):
        self.published = []

    def publish(self, domain, directory):
        self.published.append((domain, str(directory)))
        return f"digest-{len(self.published)}"


@pytest.fixture(scope="module")
def incumbent(tmp_path_factory, tiny_lm):
    from repro.matcher import MlpMatcher
    from repro.pretrain import fresh_copy
    extractor = fresh_copy(tiny_lm[0], seed=21)
    extractor.eval()
    matcher = MlpMatcher(extractor.feature_dim, np.random.default_rng(21))
    matcher.eval()
    directory = tmp_path_factory.mktemp("risk_adapt") / "incumbent"
    ERPipeline(extractor, matcher).save(directory)
    return directory


@pytest.fixture(scope="module")
def valid():
    pairs = synthetic_candidates(32, seed=23)
    return ERDataset("valid", "bench", [
        p.with_label(int(p.left.attributes == p.right.attributes))
        for p in pairs])


def _fill_queue(incumbent, root, num_pairs=16, seed=29, cap=64):
    """Route real scored pairs into a fresh queue (band reviews ~all)."""
    queue = ReviewQueue(root, segment_max_items=cap)
    router = RiskRouter(band=RiskBand(0.0, 1.0), queue=queue)
    SequentialScorer.from_directory(incumbent, router=router).score_pairs(
        synthetic_candidates(num_pairs, seed=seed))
    assert len(queue.pending()) >= 8
    return queue


def _worker(queue, incumbent, valid, workdir, registry=None, chaos=None,
            **overrides):
    return ReAdaptationWorker(
        queue, incumbent, valid, labeler=equality_oracle,
        registry=registry, workdir=workdir,
        config=ReAdaptConfig(**{**LAX, **overrides}), chaos=chaos)


class TestPromotion:
    def test_happy_path_promotes_through_gate(self, incumbent, valid,
                                              tmp_path):
        queue = _fill_queue(incumbent, tmp_path / "q")
        registry = _Registry()
        worker = _worker(queue, incumbent, valid, tmp_path / "work",
                         registry=registry)
        entry = worker.run_once()
        assert entry["status"] == "promoted"
        assert entry["candidate_f1"] >= entry["f1_floor"]
        # promoted generation is a complete snapshot WITH its calibrator
        generation = ArtifactStore(entry["generation"])
        assert generation.manifest_digest() == entry["candidate_digest"]
        assert generation.path("calibration.json").exists()
        # hot-swapped exactly once, queue fully acked, history durable
        assert registry.published == [("default", entry["generation"])]
        assert queue.pending() == []
        assert [e["status"] for e in worker.history()] == ["promoted"]
        # a restarted worker sees the same history (it is on disk)
        replay = _worker(queue, incumbent, valid, tmp_path / "work")
        assert replay.history() == worker.history()
        assert replay.run_once()["status"] == "idle"  # nothing left

    def test_below_min_items_is_idle(self, incumbent, valid, tmp_path):
        queue = _fill_queue(incumbent, tmp_path / "q", num_pairs=16)
        worker = _worker(queue, incumbent, valid, tmp_path / "work",
                         min_items=10_000)
        entry = worker.run_once()
        assert entry["status"] == "idle"
        assert queue.pending()  # nothing consumed while idle
        assert worker.history() == []


class TestCanaryGate:
    def test_regressing_candidate_rejected_incumbent_serves(
            self, incumbent, valid, tmp_path, monkeypatch):
        # Deterministic regression: the candidate evaluation comes back
        # half an F1 below the incumbent, with a zero-tolerance gate.
        from repro.risk import adapt as adapt_module
        real_evaluate = adapt_module.evaluate
        calls = []

        def regressing_evaluate(extractor, matcher, dataset):
            import dataclasses
            result = real_evaluate(extractor, matcher, dataset)
            calls.append(result.f1)
            if len(calls) == 1:  # incumbent measurement: truthful
                return result
            return dataclasses.replace(result, f1=result.f1 - 0.5)

        monkeypatch.setattr(adapt_module, "evaluate", regressing_evaluate)
        incumbent_digest = ERPipeline.load(incumbent).manifest_digest
        queue = _fill_queue(incumbent, tmp_path / "q")
        registry = _Registry()
        worker = _worker(queue, incumbent, valid, tmp_path / "work",
                         registry=registry, epsilon_f1=0.0)
        entry = worker.run_once()
        assert entry["status"] == "rejected"
        assert entry["candidate_f1"] < entry["f1_floor"]
        assert registry.published == []  # the swap never happened
        # incumbent untouched on disk; rejected candidate archived with
        # its verdict; the reviewed items are consumed (not retried
        # forever against a bad candidate)
        assert ERPipeline.load(incumbent).manifest_digest \
            == incumbent_digest
        archive = tmp_path / "work" / "archive" / "candidate-0000"
        assert (archive / "verdict.json").exists()
        assert queue.pending() == []
        assert [e["status"] for e in worker.history()] == ["rejected"]


class TestFaultInjection:
    def test_nan_divergence_archived_incumbent_serves(self, incumbent,
                                                      valid, tmp_path):
        # nan_loss on every step: with 4 epochs the GuardRail exhausts its
        # 2 recoveries and surfaces TrainingDiverged — which the worker
        # turns into a structured rejection, never a NaN snapshot.
        incumbent_digest = ERPipeline.load(incumbent).manifest_digest
        queue = _fill_queue(incumbent, tmp_path / "q")
        registry = _Registry()
        worker = _worker(queue, incumbent, valid, tmp_path / "work",
                         registry=registry, epochs=4, max_recoveries=2,
                         chaos=ChaosConfig((Fault("nan_loss"),)))
        entry = worker.run_once()
        assert entry["status"] == "diverged"
        assert entry["recoveries"] == 2
        assert entry["incidents"]  # the incident history rode along
        assert registry.published == []
        assert ERPipeline.load(incumbent).manifest_digest \
            == incumbent_digest
        archive = tmp_path / "work" / "archive" / "candidate-0000"
        assert (archive / "verdict.json").exists()
        assert queue.pending() == []  # poison drained, not replayed forever

    def test_promote_crash_replays_to_exactly_one_promotion(
            self, incumbent, valid, tmp_path):
        queue = _fill_queue(incumbent, tmp_path / "q")
        items_before = [r.seq for r in queue.pending()]
        registry = _Registry()
        worker = _worker(queue, incumbent, valid, tmp_path / "work",
                         registry=registry,
                         chaos=ChaosConfig((Fault("promote_crash",
                                                  times=1),)))
        with pytest.raises(PromotionCrash):
            worker.run_once()
        # Crash landed at the worst moment: generation written, nothing
        # published, nothing acked, nothing recorded.
        assert registry.published == []
        assert [r.seq for r in queue.pending()] == items_before
        assert worker.history() == []
        # Restart (a real restart has no injected chaos) over the same
        # durable state: the same items replay to exactly one promotion.
        restarted = _worker(ReviewQueue(tmp_path / "q", segment_max_items=64),
                            incumbent, valid, tmp_path / "work",
                            registry=registry)
        entry = restarted.run_once()
        assert entry["status"] == "promoted"
        assert len(registry.published) == 1
        assert restarted.queue.pending() == []  # zero lost, zero doubled
        assert [e["status"] for e in restarted.history()] == ["promoted"]
        assert restarted.run_once()["status"] == "idle"

    def test_corrupt_segment_fault_quarantines_then_continues(
            self, incumbent, valid, tmp_path):
        # Small segments so the rot takes out the tail, not everything.
        queue = ReviewQueue(tmp_path / "q", segment_max_items=4)
        router = RiskRouter(band=RiskBand(0.0, 1.0), queue=queue)
        SequentialScorer.from_directory(incumbent, router=router).score_pairs(
            synthetic_candidates(16, seed=31))
        survivors = len(queue.pending()) - 4  # tail segment will rot
        registry = _Registry()
        worker = _worker(queue, incumbent, valid, tmp_path / "work",
                         registry=registry,
                         chaos=ChaosConfig((Fault("corrupt_segment",
                                                  times=1),)))
        entry = worker.run_once()
        # The rotted tail is quarantined loudly; the surviving items still
        # make a full cycle.
        assert queue.stats()["corrupt_segments"]
        assert entry["status"] == "promoted"
        assert entry["items"] == survivors
        assert len(registry.published) == 1

    def test_decisions_bit_identical_across_fault_runs(self, incumbent,
                                                       valid, tmp_path):
        # Auto-decided outputs must not depend on what the risk loop is
        # doing: the same workload scores to the same bits before, during,
        # and after a crashing re-adaptation cycle.
        workload = synthetic_candidates(12, seed=37)
        baseline = SequentialScorer(
            ERPipeline.load(incumbent)).score_pairs(workload)
        queue = _fill_queue(incumbent, tmp_path / "q")
        worker = _worker(queue, incumbent, valid, tmp_path / "work",
                         chaos=ChaosConfig((Fault("promote_crash",
                                                  times=1),)))
        with pytest.raises(PromotionCrash):
            worker.run_once()
        during = SequentialScorer(
            ERPipeline.load(incumbent)).score_pairs(workload)
        assert during == baseline
        restarted = _worker(ReviewQueue(tmp_path / "q", segment_max_items=64),
                            incumbent, valid, tmp_path / "work")
        assert restarted.run_once()["status"] == "promoted"
        after = SequentialScorer(
            ERPipeline.load(incumbent)).score_pairs(workload)
        assert after == baseline
