"""Tests for differentiable functions and losses."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, functional as F

from .helpers import check_gradients


RNG = np.random.default_rng(11)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = Tensor(RNG.normal(size=(4, 7)))
        probs = F.softmax(x).data
        np.testing.assert_allclose(probs.sum(axis=-1), np.ones(4), atol=1e-12)

    def test_stable_for_large_logits(self):
        x = Tensor(np.array([[1000.0, 1000.0]]))
        probs = F.softmax(x).data
        np.testing.assert_allclose(probs, [[0.5, 0.5]])

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(RNG.normal(size=(3, 5)))
        np.testing.assert_allclose(F.log_softmax(x).data,
                                   np.log(F.softmax(x).data), atol=1e-10)

    def test_gradients(self):
        x = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        check_gradients(lambda: (F.softmax(x) ** 2).sum(), [x])

    @given(st.integers(1, 5), st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_invariant_to_constant_shift(self, n, c):
        rng = np.random.default_rng(n * 100 + c)
        x = rng.normal(size=(n, c))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 5.0)).data
        np.testing.assert_allclose(a, b, atol=1e-10)


class TestCrossEntropy:
    def test_matches_manual_value(self):
        logits = Tensor(np.array([[2.0, 0.0], [0.0, 2.0]]))
        loss = F.cross_entropy(logits, np.array([0, 1])).item()
        expected = -np.log(np.exp(2) / (np.exp(2) + 1))
        assert loss == pytest.approx(expected)

    def test_perfect_prediction_near_zero(self):
        logits = Tensor(np.array([[30.0, 0.0]]))
        assert F.cross_entropy(logits, np.array([0])).item() < 1e-9

    def test_gradients(self):
        logits = Tensor(RNG.normal(size=(5, 3)), requires_grad=True)
        labels = np.array([0, 1, 2, 1, 0])
        check_gradients(lambda: F.cross_entropy(logits, labels), [logits])

    def test_weighted_gradients(self):
        logits = Tensor(RNG.normal(size=(4, 2)), requires_grad=True)
        labels = np.array([0, 1, 0, 1])
        weights = np.array([0.1, 0.9, 0.5, 0.5])
        check_gradients(
            lambda: F.cross_entropy(logits, labels, weights=weights), [logits])

    def test_zero_weight_example_contributes_nothing(self):
        logits = Tensor(np.array([[5.0, -5.0], [0.0, 0.0]]), requires_grad=True)
        weights = np.array([0.0, 1.0])
        loss = F.cross_entropy(logits, np.array([1, 0]), weights=weights)
        assert loss.item() == pytest.approx(np.log(2))

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 2, 2))), np.array([0, 1]))
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 2))), np.array([0]))

    def test_rejects_nonpositive_weights_total(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((1, 2))), np.array([0]),
                            weights=np.array([0.0]))


class TestBinaryCrossEntropy:
    def test_matches_formula(self):
        logits = Tensor(np.array([0.3, -1.2]))
        targets = np.array([1.0, 0.0])
        loss = F.binary_cross_entropy_with_logits(logits, targets).item()
        p = 1 / (1 + np.exp(-logits.data))
        expected = -np.mean(targets * np.log(p) + (1 - targets) * np.log(1 - p))
        assert loss == pytest.approx(expected, rel=1e-6)

    def test_stable_for_huge_logits(self):
        logits = Tensor(np.array([500.0, -500.0]))
        loss = F.binary_cross_entropy_with_logits(logits, np.array([1.0, 0.0]))
        assert np.isfinite(loss.item())
        assert loss.item() < 1e-9

    def test_gradients(self):
        logits = Tensor(RNG.normal(size=(6,)), requires_grad=True)
        targets = np.array([1, 0, 1, 1, 0, 0], dtype=float)
        check_gradients(
            lambda: F.binary_cross_entropy_with_logits(logits, targets), [logits])


class TestDistillation:
    def test_zero_when_student_equals_teacher(self):
        logits = Tensor(RNG.normal(size=(4, 2)))
        loss = F.distillation_loss(logits, Tensor(logits.data.copy()),
                                   temperature=2.0)
        # Equal distributions minimize the CE at the teacher's entropy; the
        # *gradient* wrt the student must be ~0 there.
        student = Tensor(logits.data.copy(), requires_grad=True)
        F.distillation_loss(logits, student, temperature=2.0).backward()
        np.testing.assert_allclose(student.grad, np.zeros((4, 2)), atol=1e-10)
        assert np.isfinite(loss.item())

    def test_gradients(self):
        teacher = Tensor(RNG.normal(size=(3, 2)))
        student = Tensor(RNG.normal(size=(3, 2)), requires_grad=True)
        check_gradients(
            lambda: F.distillation_loss(teacher, student, temperature=3.0),
            [student])

    def test_temperature_must_be_positive(self):
        with pytest.raises(ValueError):
            F.distillation_loss(Tensor(np.zeros((1, 2))),
                                Tensor(np.zeros((1, 2))), temperature=0.0)

    @given(st.floats(0.5, 8.0))
    @settings(max_examples=15, deadline=None)
    def test_pulls_student_toward_teacher(self, temperature):
        rng = np.random.default_rng(3)
        teacher = Tensor(np.array([[4.0, -4.0]]))
        student = Tensor(np.array([[-1.0, 1.0]]), requires_grad=True)
        F.distillation_loss(teacher, student, temperature).backward()
        # Teacher prefers class 0, so the gradient must push logit 0 up.
        assert student.grad[0, 0] < 0
        assert student.grad[0, 1] > 0


class TestTokenCrossEntropy:
    def test_mask_excludes_positions(self):
        logits = Tensor(RNG.normal(size=(1, 3, 4)))
        targets = np.array([[1, 2, 3]])
        full = F.token_cross_entropy(logits, targets).item()
        masked = F.token_cross_entropy(
            logits, targets, mask=np.array([[1, 1, 0]])).item()
        first_two = F.token_cross_entropy(
            Tensor(logits.data[:, :2, :]), targets[:, :2]).item()
        assert masked == pytest.approx(first_two)
        assert masked != pytest.approx(full)

    def test_gradients_with_mask(self):
        logits = Tensor(RNG.normal(size=(2, 3, 4)), requires_grad=True)
        targets = np.array([[0, 1, 2], [3, 2, 1]])
        mask = np.array([[1, 1, 0], [1, 0, 0]])
        check_gradients(
            lambda: F.token_cross_entropy(logits, targets, mask=mask), [logits])

    def test_all_masked_is_finite(self):
        logits = Tensor(RNG.normal(size=(1, 2, 3)))
        loss = F.token_cross_entropy(logits, np.array([[0, 1]]),
                                     mask=np.zeros((1, 2)))
        assert loss.item() == pytest.approx(0.0)


class TestMisc:
    def test_mse_value_and_gradient(self):
        pred = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = F.mse(pred, np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)
        check_gradients(lambda: F.mse(pred, np.array([0.0, 0.0])), [pred])

    def test_gelu_shape_and_gradient(self):
        x = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        assert F.gelu(x).shape == (3, 4)
        check_gradients(lambda: F.gelu(x).sum(), [x], atol=1e-4)

    def test_gelu_reference_points(self):
        x = Tensor(np.array([0.0, 10.0, -10.0]))
        out = F.gelu(x).data
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(10.0, abs=1e-4)
        assert out[2] == pytest.approx(0.0, abs=1e-4)

    def test_dropout_eval_is_identity(self):
        x = Tensor(RNG.normal(size=(100,)))
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=False)
        np.testing.assert_array_equal(out.data, x.data)

    def test_dropout_preserves_expectation(self):
        x = Tensor(np.ones((20000,)))
        out = F.dropout(x, 0.3, np.random.default_rng(0), training=True)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_dropout_rejects_rate_one(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor([1.0]), 1.0, np.random.default_rng(0), True)

    def test_kl_divergence_zero_for_identical(self):
        log_p = F.log_softmax(Tensor(RNG.normal(size=(4, 3))))
        assert F.kl_divergence(log_p, log_p).item() == pytest.approx(0.0, abs=1e-12)


class TestBceAtOrigin:
    """The z == 0 kink: both softplus pieces must cancel exactly there."""

    def test_gradient_at_zero_logit_is_sigmoid_minus_target(self):
        # d/dz BCE = sigmoid(z) - y, which at z == 0 is 0.5 - y.  The old
        # where/abs pairing summed its subgradients to -y at the origin.
        logits = Tensor(np.zeros(2), requires_grad=True)
        targets = np.array([1.0, 0.0])
        F.binary_cross_entropy_with_logits(logits, targets).backward()
        np.testing.assert_allclose(logits.grad, (0.5 - targets) / 2.0)

    def test_gradient_check_across_origin(self):
        # BCE-with-logits is smooth (log(1+e^z) - z*y), so finite
        # differences are valid even with logits pinned exactly at 0.
        logits = Tensor(np.array([0.0, 0.0, 1.5, -2.0]), requires_grad=True)
        targets = np.array([1.0, 0.0, 0.0, 1.0])
        check_gradients(
            lambda: F.binary_cross_entropy_with_logits(logits, targets),
            [logits])

    def test_value_at_origin_is_log_two(self):
        loss = F.binary_cross_entropy_with_logits(
            Tensor(np.zeros(3)), np.array([1.0, 0.0, 1.0]))
        assert loss.item() == pytest.approx(np.log(2.0))


class TestLabelValidation:
    """Out-of-range class indices must raise, never wrap or misindex."""

    def test_cross_entropy_rejects_negative_label(self):
        logits = Tensor(np.zeros((3, 4)))
        with pytest.raises(ValueError, match=r"labels\[1\] = -1 is outside"):
            F.cross_entropy(logits, np.array([0, -1, 2]))

    def test_cross_entropy_rejects_label_past_num_classes(self):
        logits = Tensor(np.zeros((3, 4)))
        with pytest.raises(ValueError, match=r"labels\[2\] = 4 is outside "
                                             r"\[0, 4\)"):
            F.cross_entropy(logits, np.array([0, 1, 4]))

    def test_error_reports_invalid_count(self):
        logits = Tensor(np.zeros((3, 2)))
        with pytest.raises(ValueError, match="2 of 3 labels are invalid"):
            F.cross_entropy(logits, np.array([-5, 0, 7]))

    def test_focal_loss_rejects_bad_label(self):
        logits = Tensor(np.zeros((2, 2)))
        with pytest.raises(ValueError, match=r"labels\[1\] = 2 is outside"):
            F.focal_loss(logits, np.array([0, 2]))

    def test_token_cross_entropy_rejects_bad_target(self):
        logits = Tensor(np.zeros((1, 3, 5)))
        with pytest.raises(ValueError, match=r"targets\[2\] = 5 is outside"):
            F.token_cross_entropy(logits, np.array([[0, 1, 5]]))

    def test_token_cross_entropy_rejects_masked_bad_target(self):
        # Validation is deliberately mask-independent: a -1 "ignore" slot
        # would still index log_probs before the mask zeroes it out.
        logits = Tensor(np.zeros((1, 2, 4)))
        with pytest.raises(ValueError, match=r"targets\[1\] = -1"):
            F.token_cross_entropy(logits, np.array([[0, -1]]),
                                  mask=np.array([[1.0, 0.0]]))
