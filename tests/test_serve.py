"""Equivalence and scheduling tests for the repro.serve engine.

The load-bearing guarantee: batch formation is a pure function of the pair
sequence and scheduler configuration, so any two engines driven by the same
scheduler — in-process or across a worker pool, any worker count — must
return *bit-identical* MatchDecision lists.  Cross-policy (bucketed vs the
legacy full-padding reference) agreement is additionally locked to 1e-9.
"""

import numpy as np
import pytest

from repro.artifacts import ArtifactError, ArtifactStore
from repro.data import Entity, EntityPair
from repro.pipeline import ERPipeline
from repro.serve import (BatchScheduler, ParallelScorer, SequentialScorer,
                         score_tables)
from repro.serve.engine import _init_worker


def _ragged_pairs(count, seed=0):
    """Candidate pairs with widely varying serialized lengths."""
    rng = np.random.default_rng(seed)
    words = ["mesa", "rook", "tide", "volt", "wick", "yarn", "zinc",
             "opal", "pine", "quay"]
    pairs = []
    for i in range(count):
        n_left = int(rng.integers(1, 12))
        n_right = int(rng.integers(1, 12))
        left = Entity(f"l{i}", {"name": " ".join(rng.choice(words, n_left)),
                                "city": str(rng.choice(words))})
        right = Entity(f"r{i}", {"name": " ".join(rng.choice(words, n_right)),
                                 "city": str(rng.choice(words))})
        pairs.append(EntityPair(left, right))
    return pairs


@pytest.fixture(scope="module")
def served(tmp_path_factory, tiny_lm):
    """A live pipeline plus its persisted snapshot directory."""
    from repro.matcher import MlpMatcher
    from repro.pretrain import fresh_copy
    extractor = fresh_copy(tiny_lm[0], seed=0)
    extractor.eval()
    matcher = MlpMatcher(extractor.feature_dim, np.random.default_rng(0))
    matcher.eval()
    pipeline = ERPipeline(extractor, matcher)
    directory = tmp_path_factory.mktemp("serve") / "pipeline"
    pipeline.save(directory)
    return pipeline, directory


class TestBatchScheduler:
    def test_covers_every_pair_exactly_once(self, served):
        pipeline, __ = served
        pairs = _ragged_pairs(57)
        scheduler = BatchScheduler(pipeline.extractor.vocab,
                                   pipeline.extractor.max_len,
                                   max_batch_pairs=13)
        seen = np.concatenate([b.indices for b in scheduler.schedule(pairs)])
        assert sorted(seen.tolist()) == list(range(57))

    def test_respects_both_caps(self, served):
        pipeline, __ = served
        pairs = _ragged_pairs(80)
        scheduler = BatchScheduler(pipeline.extractor.vocab,
                                   pipeline.extractor.max_len,
                                   max_batch_pairs=16, max_batch_tokens=256)
        for batch in scheduler.schedule(pairs):
            assert batch.num_pairs <= 16
            assert batch.num_pairs * batch.padded_length <= max(
                256, batch.padded_length)  # one long row is always allowed

    def test_bucket_padding_is_tight(self, served):
        pipeline, __ = served
        pairs = _ragged_pairs(40)
        scheduler = BatchScheduler(pipeline.extractor.vocab,
                                   pipeline.extractor.max_len,
                                   bucket_rounding=8)
        for batch in scheduler.schedule(pairs):
            assert batch.padded_length % 8 == 0 or \
                batch.padded_length == pipeline.extractor.max_len
            lengths = batch.mask.sum(axis=1)
            assert lengths.max() <= batch.padded_length
            assert batch.padded_length - lengths.max() < 8

    def test_reference_policy_matches_legacy_stride(self, served):
        pipeline, __ = served
        pairs = _ragged_pairs(20)
        scheduler = BatchScheduler.reference(pipeline.extractor.vocab,
                                             pipeline.extractor.max_len,
                                             batch_size=8)
        batches = list(scheduler.schedule(pairs))
        assert [b.num_pairs for b in batches] == [8, 8, 4]
        assert all(b.padded_length == pipeline.extractor.max_len
                   for b in batches)
        assert np.concatenate([b.indices for b in batches]).tolist() == \
            list(range(20))

    def test_empty_input_yields_nothing(self, served):
        pipeline, __ = served
        scheduler = BatchScheduler(pipeline.extractor.vocab,
                                   pipeline.extractor.max_len)
        assert list(scheduler.schedule([])) == []

    def test_overlong_pair_gets_its_own_batch(self, served):
        # A pair whose (truncated) length fills the whole token budget must
        # still be scheduled — alone, at max_len, never dropped or split.
        pipeline, __ = served
        max_len = pipeline.extractor.max_len
        long_name = " ".join(["mesa"] * (3 * max_len))
        pairs = [EntityPair(Entity(f"l{i}", {"name": long_name}),
                            Entity(f"r{i}", {"name": long_name}))
                 for i in range(3)]
        scheduler = BatchScheduler(pipeline.extractor.vocab, max_len,
                                   max_batch_tokens=max_len,  # minimum legal
                                   dedup=False)
        batches = list(scheduler.schedule(pairs))
        assert [b.num_pairs for b in batches] == [1, 1, 1]
        assert all(b.padded_length == max_len for b in batches)
        seen = np.concatenate([b.indices for b in batches])
        assert sorted(seen.tolist()) == [0, 1, 2]
        # With dedup on, the three identical pairs collapse to ONE scored
        # row that still covers all three positions.
        deduped = BatchScheduler(pipeline.extractor.vocab, max_len,
                                 max_batch_tokens=max_len)
        batches = list(deduped.schedule(pairs))
        assert [b.num_pairs for b in batches] == [1]
        assert batches[0].num_covered == 3
        assert sorted(batches[0].indices.tolist()) == [0, 1, 2]

    def test_exact_capacity_bucket_fills_without_spill(self, served):
        # Uniform-length pairs whose bucket exactly fills both caps must cut
        # into full batches with no off-by-one spill batch.  (dedup=False:
        # these 12 pairs are textually identical, and this test probes cap
        # cutting, not duplicate collapsing.)
        pipeline, __ = served
        pairs = [EntityPair(Entity(f"l{i}", {"name": "mesa rook tide"}),
                            Entity(f"r{i}", {"name": "volt wick yarn"}))
                 for i in range(12)]
        probe = BatchScheduler(pipeline.extractor.vocab,
                               pipeline.extractor.max_len)
        padded = next(iter(probe.schedule(pairs))).padded_length
        scheduler = BatchScheduler(pipeline.extractor.vocab, padded,
                                   max_batch_pairs=4,
                                   max_batch_tokens=4 * padded, dedup=False)
        batches = list(scheduler.schedule(pairs))
        assert [b.num_pairs for b in batches] == [4, 4, 4]
        assert all(b.num_pairs * b.padded_length == 4 * padded
                   for b in batches)

    def test_pair_order_is_stable_within_buckets(self, served):
        # Within every batch the original positions must appear in input
        # order — bucketing may regroup pairs but never reorders a bucket.
        pipeline, __ = served
        pairs = _ragged_pairs(64, seed=3)
        scheduler = BatchScheduler(pipeline.extractor.vocab,
                                   pipeline.extractor.max_len,
                                   max_batch_pairs=7, max_batch_tokens=512)
        batches = list(scheduler.schedule(pairs))
        assert len(batches) > 1
        for batch in batches:
            # Scored rows follow input order (first occurrence per row) and
            # no position is covered twice within a batch.
            rep = batch.row_positions.tolist()
            assert rep == sorted(rep)
            idx = batch.indices.tolist()
            assert len(set(idx)) == len(idx)
        covered = np.concatenate([b.indices for b in batches])
        assert sorted(covered.tolist()) == list(range(len(pairs)))

    def test_validation(self, served):
        pipeline, __ = served
        vocab = pipeline.extractor.vocab
        with pytest.raises(ValueError):
            BatchScheduler(vocab, 0)
        with pytest.raises(ValueError):
            BatchScheduler(vocab, 96, max_batch_pairs=0)
        with pytest.raises(ValueError):
            BatchScheduler(vocab, 96, max_batch_tokens=10)
        with pytest.raises(ValueError):
            BatchScheduler(vocab, 96, bucket_rounding=0)


class TestSequentialEquivalence:
    def test_bit_identical_to_pipeline_with_same_scheduler(self, served):
        pipeline, __ = served
        pairs = _ragged_pairs(45)
        scheduler = BatchScheduler(pipeline.extractor.vocab,
                                   pipeline.extractor.max_len,
                                   max_batch_pairs=11)
        engine = SequentialScorer(pipeline, scheduler)
        assert engine.score_pairs(pairs) == \
            pipeline.score_pairs(pairs, scheduler=scheduler)

    def test_close_to_reference_across_policies(self, served):
        pipeline, __ = served
        pairs = _ragged_pairs(45)
        reference = pipeline(pairs)
        bucketed = SequentialScorer(pipeline).score_pairs(pairs)
        assert [(d.left_id, d.right_id) for d in bucketed] == \
            [(d.left_id, d.right_id) for d in reference]
        for fast, ref in zip(bucketed, reference):
            assert abs(fast.probability - ref.probability) <= 1e-9

    def test_empty_candidate_set(self, served):
        pipeline, __ = served
        assert SequentialScorer(pipeline).score_pairs([]) == []

    def test_metrics_recorded(self, served):
        pipeline, __ = served
        engine = SequentialScorer(pipeline)
        engine.score_pairs(_ragged_pairs(30))
        metrics = engine.last_metrics
        assert metrics.num_pairs == 30
        assert metrics.num_batches >= 1
        assert metrics.pairs_per_second > 0
        assert 0.0 < metrics.worker_utilization <= 1.0


class TestParallelEquivalence:
    @pytest.mark.parametrize("num_workers", [1, 4])
    def test_bit_identical_to_sequential(self, served, num_workers):
        pipeline, directory = served
        pairs = _ragged_pairs(60)
        sequential = SequentialScorer(pipeline).score_pairs(pairs)
        with ParallelScorer(directory, num_workers=num_workers) as scorer:
            assert scorer.score_pairs(pairs) == sequential

    def test_ragged_batch_caps(self, served):
        pipeline, directory = served
        pairs = _ragged_pairs(53, seed=7)
        scheduler = BatchScheduler(pipeline.extractor.vocab,
                                   pipeline.extractor.max_len,
                                   max_batch_pairs=7, max_batch_tokens=300)
        sequential = SequentialScorer(pipeline, scheduler).score_pairs(pairs)
        with ParallelScorer(directory, num_workers=2, max_batch_pairs=7,
                            max_batch_tokens=300) as scorer:
            assert scorer.score_pairs(pairs) == sequential

    def test_empty_candidate_set(self, served):
        __, directory = served
        with ParallelScorer(directory, num_workers=2) as scorer:
            assert scorer.score_pairs([]) == []
            assert scorer.last_metrics.num_pairs == 0

    def test_worker_metrics(self, served):
        __, directory = served
        with ParallelScorer(directory, num_workers=2,
                            max_batch_pairs=10) as scorer:
            scorer.score_pairs(_ragged_pairs(40))
            metrics = scorer.last_metrics
        assert metrics.engine == "parallel"
        assert metrics.num_workers == 2
        assert metrics.num_pairs == 40
        assert metrics.busy_seconds > 0

    def test_rejects_bad_worker_count(self, served):
        __, directory = served
        with pytest.raises(ValueError):
            ParallelScorer(directory, num_workers=0)

    def test_worker_refuses_changed_snapshot(self, served, tmp_path):
        """A snapshot republished mid-startup must not serve a mixed fleet."""
        pipeline, __ = served
        directory = tmp_path / "changing"
        pipeline.save(directory)
        store = ArtifactStore(directory)
        stale_digest = store.manifest_digest()
        vocab_text = store.read("vocab.txt", lambda p: p.read_text())
        store.write_text("vocab.txt", vocab_text + "\nrepublished")
        assert store.manifest_digest() != stale_digest
        with pytest.raises(ArtifactError, match="changed during worker"):
            _init_worker(str(directory), stale_digest)


class TestScoreTables:
    def test_streaming_matches_unwindowed(self, served):
        pipeline, __ = served
        pairs = _ragged_pairs(40, seed=3)
        left = [p.left for p in pairs]
        right = [p.right for p in pairs]
        unwindowed = list(score_tables(pipeline, left, right, window=10_000))
        # Different windows re-batch the stream; agreement is policy-level.
        windowed = list(score_tables(pipeline, left, right, window=9))
        assert [(d.left_id, d.right_id) for d in windowed] == \
            [(d.left_id, d.right_id) for d in unwindowed]
        for a, b in zip(windowed, unwindowed):
            assert abs(a.probability - b.probability) <= 1e-9

    def test_covers_exactly_the_blocked_candidates(self, served):
        pipeline, __ = served
        pairs = _ragged_pairs(40, seed=3)
        left = [p.left for p in pairs]
        right = [p.right for p in pairs]
        candidates = pipeline.blocker.candidates(left, right)
        streamed = list(score_tables(pipeline, left, right))
        assert [(d.left_id, d.right_id) for d in streamed] == \
            [(p.left.entity_id, p.right.entity_id) for p in candidates]

    def test_parallel_streaming(self, served):
        pipeline, directory = served
        pairs = _ragged_pairs(30, seed=5)
        left = [p.left for p in pairs]
        right = [p.right for p in pairs]
        sequential = list(score_tables(pipeline, left, right, window=16))
        parallel = list(score_tables(directory, left, right, window=16,
                                     num_workers=2))
        assert parallel == sequential

    def test_parallel_requires_directory(self, served):
        pipeline, __ = served
        with pytest.raises(ValueError, match="snapshot directory"):
            list(score_tables(pipeline, [], [], num_workers=2))

    def test_match_tables_threshold(self, served):
        pipeline, directory = served
        pairs = _ragged_pairs(30, seed=5)
        left = [p.left for p in pairs]
        right = [p.right for p in pairs]
        with ParallelScorer(directory, num_workers=1) as scorer:
            matches = scorer.match_tables(left, right)
            decisions = list(scorer.score_tables(left, right))
        expected = [(d.left_id, d.right_id) for d in decisions
                    if d.probability >= scorer.threshold]
        assert matches == expected
