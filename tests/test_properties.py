"""Hypothesis property tests for the text substrate and blocking.

These lock the *invariants* the serving engine builds on: tokenization
round-trips, padding preserves content and reports it faithfully in the
mask, and blockers only ever emit a duplicate-free subset of the cartesian
product.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.blocking import OverlapBlocker, QGramBlocker
from repro.data import Entity
from repro.text import (SPECIAL_TOKENS, Vocabulary, bucket_by_length,
                        pad_sequences, tokenize)

#: Plain lowercase word tokens — the shape tokenize() emits for normal text.
WORDS = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1,
                max_size=8)

SETTINGS = settings(max_examples=50, deadline=None)


class TestTokenizerRoundTrip:
    @SETTINGS
    @given(st.lists(WORDS, min_size=1, max_size=20))
    def test_tokenize_is_identity_on_word_tokens(self, words):
        assert tokenize(" ".join(words)) == words

    @SETTINGS
    @given(st.lists(WORDS, min_size=1, max_size=20))
    def test_encode_decode_round_trip(self, words):
        vocab = Vocabulary(words)
        ids = vocab.encode_tokens(words)
        assert vocab.decode(ids, skip_special=True) == words

    @SETTINGS
    @given(st.lists(WORDS, min_size=1, max_size=10))
    def test_specials_survive_serialization_and_drop_on_decode(self, words):
        vocab = Vocabulary(words)
        tokens = ["[CLS]", *words, "[SEP]"]
        reparsed = tokenize(" ".join(tokens))
        assert reparsed == tokens
        assert vocab.decode(vocab.encode_tokens(reparsed)) == words

    @SETTINGS
    @given(st.lists(WORDS, min_size=1, max_size=20))
    def test_unknown_tokens_map_to_unk_not_crash(self, words):
        vocab = Vocabulary()  # no body tokens at all
        ids = vocab.encode_tokens(words)
        assert all(i == vocab.unk_id for i in ids)


class TestPadSequencesInvariants:
    @SETTINGS
    @given(st.lists(st.lists(st.integers(9, 500), min_size=0, max_size=30),
                    min_size=0, max_size=12),
           st.integers(1, 24))
    def test_shape_mask_and_content(self, sequences, max_len):
        pad_id = 0
        ids, mask = pad_sequences(sequences, max_len, pad_id)
        assert ids.shape == (len(sequences), max_len)
        assert mask.shape == (len(sequences), max_len)
        assert ids.dtype == np.int64
        assert set(np.unique(mask)).issubset({0.0, 1.0})
        for row, seq in enumerate(sequences):
            kept = min(len(seq), max_len)
            # mask counts exactly the surviving tokens, as a prefix
            assert mask[row].sum() == kept
            assert (mask[row, :kept] == 1.0).all()
            # surviving ids are the sequence prefix; the rest is padding
            assert ids[row, :kept].tolist() == list(seq[:kept])
            assert (ids[row, kept:] == pad_id).all()

    @SETTINGS
    @given(st.lists(st.integers(0, 200), min_size=0, max_size=40),
           st.integers(1, 16), st.integers(1, 64))
    def test_bucket_by_length_partitions_and_bounds(self, lengths, rounding,
                                                    max_len):
        buckets = bucket_by_length(lengths, rounding, max_len)
        flat = sorted(i for members in buckets.values() for i in members)
        assert flat == list(range(len(lengths)))  # exact partition
        for padded, members in buckets.items():
            assert 1 <= padded <= max_len
            assert padded % rounding == 0 or padded == max_len
            for i in members:
                assert min(lengths[i], max_len) <= padded


def _entities(prefix, token_lists):
    return [Entity(f"{prefix}{i}", {"text": " ".join(tokens)})
            for i, tokens in enumerate(token_lists)]


#: Small shared alphabet so overlap actually happens.
SMALL_WORDS = st.sampled_from(
    ["ada", "bolt", "cove", "dune", "echo", "fern", "gale", "hale"])
TABLES = st.lists(st.lists(SMALL_WORDS, min_size=1, max_size=6),
                  min_size=1, max_size=8)


class TestBlockerProperties:
    @SETTINGS
    @given(TABLES, TABLES, st.integers(1, 3))
    def test_overlap_subset_no_duplicates_and_shared_tokens(
            self, left_tokens, right_tokens, min_overlap):
        left = _entities("l", left_tokens)
        right = _entities("r", right_tokens)
        blocker = OverlapBlocker(min_overlap=min_overlap, stop_fraction=1.0)
        candidates = blocker.candidates(left, right)
        ids = [(p.left.entity_id, p.right.entity_id) for p in candidates]
        # no duplicate pairs
        assert len(ids) == len(set(ids))
        # subset of the cartesian product
        universe = {(a.entity_id, b.entity_id) for a in left for b in right}
        assert set(ids).issubset(universe)
        # every surviving pair genuinely shares >= min_overlap tokens
        for pair in candidates:
            shared = (set(tokenize(pair.left.text()))
                      & set(tokenize(pair.right.text())))
            assert len(shared) >= min_overlap

    @SETTINGS
    @given(TABLES, TABLES)
    def test_qgram_subset_no_duplicates(self, left_tokens, right_tokens):
        left = _entities("l", left_tokens)
        right = _entities("r", right_tokens)
        candidates = QGramBlocker(threshold=0.3).candidates(left, right)
        ids = [(p.left.entity_id, p.right.entity_id) for p in candidates]
        assert len(ids) == len(set(ids))
        universe = {(a.entity_id, b.entity_id) for a in left for b in right}
        assert set(ids).issubset(universe)

    @SETTINGS
    @given(TABLES, TABLES)
    def test_streaming_blocker_equals_batch(self, left_tokens, right_tokens):
        left = _entities("l", left_tokens)
        right = _entities("r", right_tokens)
        blocker = OverlapBlocker(min_overlap=1, stop_fraction=1.0)
        assert list(blocker.iter_candidates(left, right)) == \
            blocker.candidates(left, right)
