"""Failure-injection tests: corrupt caches, malformed inputs, edge shapes.

A library that trains for minutes must fail *fast and loud* on bad inputs;
these tests pin the error behaviour.
"""

import numpy as np
import pytest

from repro.data import Entity, EntityPair, ERDataset, load_csv
from repro.datasets import load_dataset
from repro.matcher import MlpMatcher
from repro.nn import Tensor, save_state
from repro.pretrain.cache import _load_vocab, pretrained_lm
from repro.text import Vocabulary, pad_sequences
from repro.train import TrainConfig, evaluate, match_metrics, train_source_only


class TestCorruptCache:
    def test_corrupt_vocab_file_rejected(self, tmp_path):
        bad = tmp_path / "bad.vocab.txt"
        # Nine lines (so not truncation), but the specials are wrong.
        bad.write_text("\n".join(["[PAD]", "not-the-right-specials"]
                                 + [f"tok{i}" for i in range(7)]))
        with pytest.raises(ValueError, match="token mismatch"):
            _load_vocab(bad)

    def test_trailing_newline_is_not_a_phantom_token(self, tmp_path):
        from repro.pretrain.cache import _save_vocab
        from repro.text import Vocabulary
        vocab = Vocabulary(["alpha", "beta"])
        good = tmp_path / "good.vocab.txt"
        _save_vocab(vocab, good)
        good.write_text(good.read_text() + "\n")  # POSIX-style trailing \n
        reloaded = _load_vocab(good)
        assert len(reloaded) == len(vocab)

    def test_truncated_vocab_names_truncation(self, tmp_path):
        bad = tmp_path / "short.vocab.txt"
        bad.write_text("[PAD]\n[UNK]\n")
        with pytest.raises(ValueError, match="truncated"):
            _load_vocab(bad)

    def test_wrong_shape_checkpoint_regenerates(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        kwargs = dict(dim=16, num_layers=1, num_heads=2, max_len=48,
                      corpus_scale=0.01, steps=2, seed=0)
        extractor, vocab = pretrained_lm(**kwargs)
        # Overwrite the cached weights with a mismatched architecture.
        from repro.extractors import TransformerExtractor
        other = TransformerExtractor(vocab, np.random.default_rng(0),
                                     dim=8, num_layers=1, num_heads=2,
                                     max_len=48)
        npz = next(tmp_path.glob("*.npz"))
        save_state(other, npz)
        # Self-healing: the mismatched checkpoint is quarantined and the LM
        # re-pretrained instead of crashing the caller.
        healed, __ = pretrained_lm(**kwargs)
        assert healed.dim == 16
        assert list(tmp_path.glob("*.npz.corrupt*"))


class TestMalformedData:
    def test_csv_with_ragged_rows(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("left_id,left_t,right_id,right_t,label\n"
                        "a,x,b\n")  # missing columns
        with pytest.raises((ValueError, IndexError)):
            load_csv(path)

    def test_dataset_with_single_class_split_fails_cleanly(self):
        pairs = [EntityPair(Entity(f"a{i}", {"t": "x"}),
                            Entity(f"b{i}", {"t": "y"}), 0)
                 for i in range(10)]
        ds = ERDataset("allneg", "t", pairs)
        # Metrics still work: zero matches means F1 = 0 with no crash.
        labels = ds.labels()
        assert match_metrics(labels, np.zeros(10, dtype=int)).f1 == 0.0

    def test_evaluate_on_unlabeled_raises(self, lm_copy, matcher_factory):
        target = load_dataset("fz", scale=0.1, seed=0).without_labels()
        matcher = matcher_factory(lm_copy.feature_dim)
        with pytest.raises(ValueError):
            evaluate(lm_copy, matcher, target)


class TestEdgeShapes:
    def test_single_pair_batch(self, lm_copy, matcher_factory):
        ds = load_dataset("fz", scale=0.1, seed=0)
        matcher = matcher_factory(lm_copy.feature_dim)
        features = lm_copy(ds.pairs[:1])
        assert features.shape == (1, lm_copy.feature_dim)
        assert matcher.predict(features).shape == (1,)

    def test_empty_pad_batch(self):
        ids, mask = pad_sequences([], max_len=4, pad_id=0)
        assert ids.shape == (0, 4)

    def test_matcher_on_zero_rows(self):
        matcher = MlpMatcher(4, np.random.default_rng(0))
        out = matcher(Tensor(np.zeros((0, 4))))
        assert out.shape == (0, 2)

    def test_training_with_batch_larger_than_source(self, lm_copy,
                                                    matcher_factory):
        source = load_dataset("fz", scale=0.1, seed=0)
        sub = source.subset(range(6), suffix="tiny")
        target = load_dataset("zy", scale=0.1, seed=0)
        from repro.data import target_da_split
        valid, test = target_da_split(target, np.random.default_rng(0))
        matcher = matcher_factory(lm_copy.feature_dim)
        config = TrainConfig(epochs=1, batch_size=64,
                             iterations_per_epoch=2, seed=0)
        result = train_source_only(lm_copy, matcher, sub, valid, test,
                                   config)
        assert len(result.history) == 1
