"""Failure-injection tests: corrupt caches, malformed inputs, edge shapes —
plus the chaos tier (``pytest -m chaos``), which injects deterministic
worker crashes, hangs, poison batches, pool death, and NaN losses through
:mod:`repro.resilience.chaos` and asserts every recovery path ends in final
decisions **bit-identical** to a fault-free run.

A library that trains for minutes must fail *fast and loud* on bad inputs;
these tests pin the error behaviour.
"""

import numpy as np
import pytest

from repro.data import Entity, EntityPair, ERDataset, load_csv
from repro.datasets import load_dataset
from repro.matcher import MlpMatcher
from repro.nn import Tensor, save_state
from repro.pretrain.cache import _load_vocab, pretrained_lm
from repro.resilience import (BackoffPolicy, ChaosConfig, Fault, RetryPolicy,
                              TrainingDiverged)
from repro.text import Vocabulary, pad_sequences
from repro.train import TrainConfig, evaluate, match_metrics, train_source_only


class TestCorruptCache:
    def test_corrupt_vocab_file_rejected(self, tmp_path):
        bad = tmp_path / "bad.vocab.txt"
        # Nine lines (so not truncation), but the specials are wrong.
        bad.write_text("\n".join(["[PAD]", "not-the-right-specials"]
                                 + [f"tok{i}" for i in range(7)]))
        with pytest.raises(ValueError, match="token mismatch"):
            _load_vocab(bad)

    def test_trailing_newline_is_not_a_phantom_token(self, tmp_path):
        from repro.pretrain.cache import _save_vocab
        from repro.text import Vocabulary
        vocab = Vocabulary(["alpha", "beta"])
        good = tmp_path / "good.vocab.txt"
        _save_vocab(vocab, good)
        good.write_text(good.read_text() + "\n")  # POSIX-style trailing \n
        reloaded = _load_vocab(good)
        assert len(reloaded) == len(vocab)

    def test_truncated_vocab_names_truncation(self, tmp_path):
        bad = tmp_path / "short.vocab.txt"
        bad.write_text("[PAD]\n[UNK]\n")
        with pytest.raises(ValueError, match="truncated"):
            _load_vocab(bad)

    def test_wrong_shape_checkpoint_regenerates(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        kwargs = dict(dim=16, num_layers=1, num_heads=2, max_len=48,
                      corpus_scale=0.01, steps=2, seed=0)
        extractor, vocab = pretrained_lm(**kwargs)
        # Overwrite the cached weights with a mismatched architecture.
        from repro.extractors import TransformerExtractor
        other = TransformerExtractor(vocab, np.random.default_rng(0),
                                     dim=8, num_layers=1, num_heads=2,
                                     max_len=48)
        npz = next(tmp_path.glob("*.npz"))
        save_state(other, npz)
        # Self-healing: the mismatched checkpoint is quarantined and the LM
        # re-pretrained instead of crashing the caller.
        healed, __ = pretrained_lm(**kwargs)
        assert healed.dim == 16
        assert list(tmp_path.glob("*.npz.corrupt*"))


class TestMalformedData:
    def test_csv_with_ragged_rows(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("left_id,left_t,right_id,right_t,label\n"
                        "a,x,b\n")  # missing columns
        with pytest.raises((ValueError, IndexError)):
            load_csv(path)

    def test_dataset_with_single_class_split_fails_cleanly(self):
        pairs = [EntityPair(Entity(f"a{i}", {"t": "x"}),
                            Entity(f"b{i}", {"t": "y"}), 0)
                 for i in range(10)]
        ds = ERDataset("allneg", "t", pairs)
        # Metrics still work: zero matches means F1 = 0 with no crash.
        labels = ds.labels()
        assert match_metrics(labels, np.zeros(10, dtype=int)).f1 == 0.0

    def test_evaluate_on_unlabeled_raises(self, lm_copy, matcher_factory):
        target = load_dataset("fz", scale=0.1, seed=0).without_labels()
        matcher = matcher_factory(lm_copy.feature_dim)
        with pytest.raises(ValueError):
            evaluate(lm_copy, matcher, target)


class TestEdgeShapes:
    def test_single_pair_batch(self, lm_copy, matcher_factory):
        ds = load_dataset("fz", scale=0.1, seed=0)
        matcher = matcher_factory(lm_copy.feature_dim)
        features = lm_copy(ds.pairs[:1])
        assert features.shape == (1, lm_copy.feature_dim)
        assert matcher.predict(features).shape == (1,)

    def test_empty_pad_batch(self):
        ids, mask = pad_sequences([], max_len=4, pad_id=0)
        assert ids.shape == (0, 4)

    def test_matcher_on_zero_rows(self):
        matcher = MlpMatcher(4, np.random.default_rng(0))
        out = matcher(Tensor(np.zeros((0, 4))))
        assert out.shape == (0, 2)

    def test_training_with_batch_larger_than_source(self, lm_copy,
                                                    matcher_factory):
        source = load_dataset("fz", scale=0.1, seed=0)
        sub = source.subset(range(6), suffix="tiny")
        target = load_dataset("zy", scale=0.1, seed=0)
        from repro.data import target_da_split
        valid, test = target_da_split(target, np.random.default_rng(0))
        matcher = matcher_factory(lm_copy.feature_dim)
        config = TrainConfig(epochs=1, batch_size=64,
                             iterations_per_epoch=2, seed=0)
        result = train_source_only(lm_copy, matcher, sub, valid, test,
                                   config)
        assert len(result.history) == 1


# --------------------------------------------------------------------------- #
# chaos tier: injected faults, bit-identical recovery (`pytest -m chaos`)
# --------------------------------------------------------------------------- #

#: Small batches so a ~60-pair workload spans several scheduler batches —
#: enough distinct (worker, batch) targets for every fault scenario.
_SCHED = dict(max_batch_pairs=16)


def _chaos_pairs(count=60, seed=3):
    rng = np.random.default_rng(seed)
    words = ["mesa", "rook", "tide", "volt", "wick", "yarn", "zinc",
             "opal", "pine", "quay"]
    pairs = []
    for i in range(count):
        left = Entity(f"l{i}", {"name": " ".join(
            rng.choice(words, int(rng.integers(1, 12))))})
        right = Entity(f"r{i}", {"name": " ".join(
            rng.choice(words, int(rng.integers(1, 12))))})
        pairs.append(EntityPair(left, right))
    return pairs


@pytest.fixture(scope="module")
def chaos_served(tmp_path_factory, tiny_lm):
    """Snapshot dir + the fault-free decision list every scenario must match."""
    from repro.pipeline import ERPipeline
    from repro.pretrain import fresh_copy
    from repro.serve import SequentialScorer
    extractor = fresh_copy(tiny_lm[0], seed=0)
    extractor.eval()
    matcher = MlpMatcher(extractor.feature_dim, np.random.default_rng(0))
    matcher.eval()
    directory = tmp_path_factory.mktemp("chaos") / "pipeline"
    ERPipeline(extractor, matcher).save(directory)
    pairs = _chaos_pairs()
    baseline = SequentialScorer.from_directory(
        directory, **_SCHED).score_pairs(pairs)
    assert len(baseline) == len(pairs)
    return directory, pairs, baseline


def _instant_retry(**kwargs):
    return RetryPolicy(backoff=BackoffPolicy.instant(), **kwargs)


def _run_with_faults(chaos_served, chaos, retry, num_workers=2):
    from repro.serve import ParallelScorer
    directory, pairs, baseline = chaos_served
    with ParallelScorer(directory, num_workers=num_workers, retry=retry,
                        chaos=chaos, **_SCHED) as scorer:
        decisions = scorer.score_pairs(pairs)
        events = scorer.events.copy()
        metrics = scorer.last_metrics
        degraded = scorer.degraded
    assert decisions == baseline, \
        "decisions drifted from the fault-free run"
    return events, metrics, degraded


@pytest.mark.chaos
class TestServeChaos:
    def test_worker_crash_mid_run_is_retried_elsewhere(self, chaos_served):
        events, metrics, degraded = _run_with_faults(
            chaos_served, ChaosConfig((Fault("crash", batch=2),)),
            _instant_retry())
        assert events.crashes == 1
        assert events.respawns == 1
        assert events.retries == 1
        assert events.timeouts == 0 and events.quarantined == 0
        assert not degraded
        assert metrics.events["crashes"] == 1  # surfaced per-run

    def test_hung_worker_is_killed_at_the_deadline(self, chaos_served):
        events, metrics, degraded = _run_with_faults(
            chaos_served,
            ChaosConfig((Fault("hang", batch=1, hang_seconds=20.0),)),
            _instant_retry(batch_timeout=2.0))
        assert events.timeouts == 1
        assert events.respawns == 1
        assert events.retries == 1
        assert events.crashes == 0
        assert not degraded

    def test_poison_batch_is_quarantined_in_process(self, chaos_served):
        # times=None: the batch returns garbage on EVERY attempt, on any
        # worker — the definition of poison.  After max_attempts the
        # supervisor must quarantine it to the in-process fallback.
        events, metrics, degraded = _run_with_faults(
            chaos_served,
            ChaosConfig((Fault("garbage", batch=0, times=None),)),
            _instant_retry(max_attempts=3))
        assert events.garbage == 3
        assert events.retries == 2
        assert events.quarantined == 1
        assert events.respawns == 0  # garbage does not kill the worker
        assert not degraded

    def test_total_pool_death_degrades_to_sequential(self, chaos_served):
        # Every batch crashes every worker; after the respawn budget is
        # spent the pool is dead and the run must complete in-process.
        events, metrics, degraded = _run_with_faults(
            chaos_served, ChaosConfig((Fault("crash", times=None),)),
            _instant_retry(max_respawns=2))
        assert events.pool_fallbacks == 1
        assert events.crashes >= 2
        assert events.respawns == 2  # the whole budget
        assert degraded

    def test_env_var_plan_reaches_the_workers(self, chaos_served,
                                              monkeypatch):
        from repro.serve import ParallelScorer
        directory, pairs, baseline = chaos_served
        monkeypatch.setenv("REPRO_CHAOS", "crash:batch=1")
        with ParallelScorer(directory, num_workers=2,
                            retry=_instant_retry(), **_SCHED) as scorer:
            assert scorer.score_pairs(pairs) == baseline
            assert scorer.events.crashes == 1


@pytest.mark.chaos
class TestTrainingChaos:
    def test_nan_at_step_k_rolls_back_and_converges(self, lm_copy,
                                                    matcher_factory,
                                                    books_restaurants):
        source, __, valid, test = books_restaurants
        matcher = matcher_factory(lm_copy.feature_dim)
        config = TrainConfig(epochs=2, batch_size=16, iterations_per_epoch=4,
                             seed=0,
                             chaos=ChaosConfig((Fault("nan_loss", step=3),)))
        result = train_source_only(lm_copy, matcher, source, valid, test,
                                   config)
        assert result.events.rollbacks == 1
        assert result.events.lr_halvings == 1
        assert np.isfinite(result.best_f1)
        assert len(result.history) == 2  # training ran to completion

    def test_persistent_nan_raises_structured_diagnosis(self, lm_copy,
                                                        matcher_factory,
                                                        books_restaurants):
        source, __, valid, test = books_restaurants
        matcher = matcher_factory(lm_copy.feature_dim)
        config = TrainConfig(epochs=1, batch_size=16, iterations_per_epoch=4,
                             seed=0, guard_max_recoveries=2,
                             chaos=ChaosConfig((Fault("nan_loss"),)))
        with pytest.raises(TrainingDiverged) as exc_info:
            train_source_only(lm_copy, matcher, source, valid, test, config)
        diverged = exc_info.value
        assert diverged.recoveries == 2
        assert len(diverged.incidents) == 3
        assert diverged.method == "noda"
