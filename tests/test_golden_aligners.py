"""Golden-value regression tier: the six aligners' numerics, frozen.

Each test replays the pinned recipe of :mod:`repro.train.regression` and
compares every per-epoch loss and validation F1 against the blessed
snapshot in ``tests/golden/<aligner>.json`` to 1e-6.  A hot-path rewrite
that silently changes any aligner's numbers fails here by name, epoch, and
field.

After an *intentional* numeric change, re-bless with::

    python scripts/refresh_goldens.py

on the CI reference platform (goldens pin BLAS summation order, so an
arbitrary laptop may legitimately disagree in the last ulps).
"""

import pytest

from repro.train.regression import (GOLDEN_ALIGNERS, compare_runs,
                                    golden_path, golden_run, load_golden)

pytestmark = pytest.mark.slow


@pytest.mark.parametrize("aligner", GOLDEN_ALIGNERS)
def test_aligner_matches_golden(aligner):
    path = golden_path(aligner)
    assert path.exists(), (
        f"no golden snapshot for {aligner!r}; generate it with "
        f"`python scripts/refresh_goldens.py`")
    expected = load_golden(aligner)
    actual = golden_run(aligner)
    problems = compare_runs(expected, actual)
    assert not problems, (
        f"{aligner} numerics drifted from {path}:\n  " + "\n  ".join(problems)
        + "\nIf this change is intentional, re-bless with "
          "`python scripts/refresh_goldens.py`.")


def test_golden_set_is_complete():
    """Every aligner in the design space has a blessed snapshot."""
    missing = [a for a in GOLDEN_ALIGNERS if not golden_path(a).exists()]
    assert not missing, f"missing golden snapshots: {missing}"
