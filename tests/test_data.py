"""Tests for entities, datasets, splits, CSV I/O, and blocking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking import OverlapBlocker, blocking_recall
from repro.data import (Entity, EntityPair, ERDataset, load_csv, save_csv,
                        split_fractions, supervised_split, target_da_split)


def _entity(i, **attrs):
    return Entity(f"e{i}", attrs or {"title": f"thing {i}", "price": str(i)})


def _dataset(n=20, match_every=4):
    pairs = []
    for i in range(n):
        label = 1 if i % match_every == 0 else 0
        pairs.append(EntityPair(_entity(i), _entity(i + 1000), label))
    return ERDataset("toy", "testing", pairs)


class TestEntity:
    def test_attribute_order_preserved(self):
        e = Entity("x", {"b": "1", "a": "2"})
        assert e.attribute_names() == ("b", "a")

    def test_text_skips_none(self):
        e = Entity("x", {"a": "hello", "b": None})
        assert e.text() == "hello"

    def test_pair_tokens_framed(self):
        p = EntityPair(_entity(1), _entity(2), 1)
        tokens = p.tokens()
        assert tokens[0] == "[CLS]"
        assert tokens[-1] == "[SEP]"

    def test_with_label(self):
        p = EntityPair(_entity(1), _entity(2), 1)
        assert p.with_label(None).label is None
        assert p.label == 1


class TestERDataset:
    def test_statistics(self):
        ds = _dataset(20, 4)
        assert ds.num_pairs == 20
        assert ds.num_matches == 5
        assert ds.num_attributes == 2
        assert ds.is_labeled

    def test_rejects_bad_labels(self):
        with pytest.raises(ValueError):
            ERDataset("bad", "d", [EntityPair(_entity(0), _entity(1), 2)])

    def test_without_labels(self):
        ds = _dataset().without_labels()
        assert not ds.is_labeled
        with pytest.raises(ValueError):
            ds.labels()

    def test_labels_vector(self):
        labels = _dataset(8, 2).labels()
        np.testing.assert_array_equal(labels, [1, 0, 1, 0, 1, 0, 1, 0])

    def test_subset(self):
        sub = _dataset().subset([0, 4], suffix="mini")
        assert len(sub) == 2
        assert sub.num_matches == 2
        assert sub.name == "toy-mini"

    def test_iteration_and_indexing(self):
        ds = _dataset(5, 2)
        assert ds[0].label == 1
        assert len(list(ds)) == 5

    def test_describe_matches_properties(self):
        ds = _dataset()
        info = ds.describe()
        assert info["pairs"] == ds.num_pairs
        assert info["matches"] == ds.num_matches

    def test_texts_one_per_pair(self):
        ds = _dataset(6)
        assert len(ds.texts()) == 6
        assert "thing" in ds.texts()[0]


class TestSplits:
    def test_fractions_partition_everything(self):
        ds = _dataset(40, 4)
        parts = split_fractions(ds, [0.5, 0.25, 0.25],
                                np.random.default_rng(0), ["a", "b", "c"])
        assert sum(len(p) for p in parts) == 40

    def test_stratification_keeps_matches_everywhere(self):
        ds = _dataset(100, 4)  # 25 matches
        parts = split_fractions(ds, [0.6, 0.2, 0.2],
                                np.random.default_rng(0), ["a", "b", "c"])
        for part in parts:
            assert part.num_matches > 0
            rate = part.num_matches / len(part)
            assert 0.15 < rate < 0.35

    def test_target_da_split_is_one_to_nine(self):
        valid, test = target_da_split(_dataset(100, 4),
                                      np.random.default_rng(1))
        assert len(valid) + len(test) == 100
        assert len(valid) == pytest.approx(10, abs=2)

    def test_supervised_split_is_three_one_one(self):
        train, valid, test = supervised_split(_dataset(100, 4),
                                              np.random.default_rng(1))
        assert len(train) == pytest.approx(60, abs=2)
        assert len(valid) == pytest.approx(20, abs=2)
        assert len(test) == pytest.approx(20, abs=2)

    def test_rejects_fractions_not_summing_to_one(self):
        with pytest.raises(ValueError):
            split_fractions(_dataset(), [0.5, 0.4],
                            np.random.default_rng(0), ["a", "b"])

    def test_rejects_mismatched_names(self):
        with pytest.raises(ValueError):
            split_fractions(_dataset(), [0.5, 0.5],
                            np.random.default_rng(0), ["a"])

    def test_disjoint_parts(self):
        ds = _dataset(30, 3)
        parts = split_fractions(ds, [0.5, 0.5], np.random.default_rng(2),
                                ["x", "y"])
        ids_x = {p.left.entity_id for p in parts[0]}
        ids_y = {p.left.entity_id for p in parts[1]}
        assert not ids_x & ids_y

    @given(st.integers(20, 120), st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_split_never_loses_pairs(self, n, match_every):
        ds = _dataset(n, match_every)
        parts = split_fractions(ds, [0.3, 0.3, 0.4],
                                np.random.default_rng(0), ["a", "b", "c"])
        assert sum(len(p) for p in parts) == n
        assert sum(p.num_matches for p in parts) == ds.num_matches


class TestCsvIO:
    def test_roundtrip(self, tmp_path):
        ds = _dataset(10, 3)
        path = tmp_path / "pairs.csv"
        save_csv(ds, path)
        loaded = load_csv(path, name="toy", domain="testing")
        assert len(loaded) == 10
        for a, b in zip(ds.pairs, loaded.pairs):
            assert a.label == b.label
            assert a.left.attributes == b.left.attributes
            assert a.right.entity_id == b.right.entity_id

    def test_null_roundtrip(self, tmp_path):
        pair = EntityPair(Entity("a", {"x": None, "y": "v"}),
                          Entity("b", {"x": "w", "y": None}), 0)
        ds = ERDataset("nulls", "t", [pair])
        path = tmp_path / "nulls.csv"
        save_csv(ds, path)
        loaded = load_csv(path)
        assert loaded.pairs[0].left.attributes["x"] is None
        assert loaded.pairs[0].right.attributes["y"] is None

    def test_unlabeled_roundtrip(self, tmp_path):
        ds = _dataset(4).without_labels()
        path = tmp_path / "unlabeled.csv"
        save_csv(ds, path)
        assert load_csv(path).pairs[0].label is None

    def test_empty_dataset_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_csv(ERDataset("empty", "t", []), tmp_path / "x.csv")

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("foo,bar\n1,2\n")
        with pytest.raises(ValueError):
            load_csv(path)


class TestBlocking:
    def _tables(self):
        left = [Entity("l1", {"t": "samsung galaxy phone black"}),
                Entity("l2", {"t": "sony bravia tv led"}),
                Entity("l3", {"t": "hp laserjet printer compact"})]
        right = [Entity("r1", {"t": "samsung galaxy phone 64gb"}),
                 Entity("r2", {"t": "sony bravia television"}),
                 Entity("r3", {"t": "canon pixma scanner"})]
        return left, right

    def test_finds_true_matches(self):
        left, right = self._tables()
        pairs = OverlapBlocker(min_overlap=2).candidates(left, right)
        found = {(p.left.entity_id, p.right.entity_id) for p in pairs}
        assert ("l1", "r1") in found
        assert ("l2", "r2") in found

    def test_prunes_unrelated(self):
        left, right = self._tables()
        pairs = OverlapBlocker(min_overlap=2).candidates(left, right)
        found = {(p.left.entity_id, p.right.entity_id) for p in pairs}
        assert ("l3", "r3") not in found
        assert ("l1", "r2") not in found

    def test_stop_words_ignored(self):
        left = [Entity(f"l{i}", {"t": f"common item {i}"}) for i in range(10)]
        right = [Entity("r0", {"t": "common item elsewhere"})]
        pairs = OverlapBlocker(min_overlap=2,
                               stop_fraction=0.5).candidates(left, right)
        # 'common' and 'item' appear everywhere -> stop words -> no overlap.
        assert pairs == []

    def test_recall_metric(self):
        left, right = self._tables()
        pairs = OverlapBlocker(min_overlap=2).candidates(left, right)
        recall = blocking_recall(pairs, [("l1", "r1"), ("l2", "r2")])
        assert recall == 1.0
        partial = blocking_recall(pairs, [("l1", "r1"), ("l3", "r3")])
        assert partial == 0.5

    def test_recall_requires_truth(self):
        with pytest.raises(ValueError):
            blocking_recall([], [])

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            OverlapBlocker(min_overlap=0)
        with pytest.raises(ValueError):
            OverlapBlocker(stop_fraction=0.0)
