"""Tests for the end-to-end ER pipeline."""

import numpy as np
import pytest

from repro.blocking import OverlapBlocker
from repro.data import Entity, EntityPair
from repro.datasets import load_dataset
from repro.pipeline import ERPipeline, MatchDecision


@pytest.fixture()
def pipeline(lm_copy, matcher_factory):
    return ERPipeline(lm_copy, matcher_factory(lm_copy.feature_dim))


def _tables():
    ds = load_dataset("fz", scale=0.1, seed=0)
    left = [p.left for p in ds.pairs[:15]]
    right = [p.right for p in ds.pairs[:15]]
    return left, right


class TestScoring:
    def test_score_pairs_returns_decisions(self, pipeline):
        ds = load_dataset("fz", scale=0.1, seed=0)
        decisions = pipeline.score_pairs(ds.pairs[:5])
        assert len(decisions) == 5
        assert all(isinstance(d, MatchDecision) for d in decisions)
        assert all(0.0 <= d.probability <= 1.0 for d in decisions)

    def test_decision_ids_match_pairs(self, pipeline):
        ds = load_dataset("fz", scale=0.1, seed=0)
        decision = pipeline.score_pairs(ds.pairs[:1])[0]
        assert decision.left_id == ds.pairs[0].left.entity_id
        assert decision.right_id == ds.pairs[0].right.entity_id

    def test_is_match_property(self):
        assert MatchDecision("a", "b", 0.7).is_match
        assert not MatchDecision("a", "b", 0.3).is_match

    def test_match_tables_returns_id_pairs(self, pipeline):
        left, right = _tables()
        matches = pipeline.match_tables(left, right)
        assert all(isinstance(pair, tuple) and len(pair) == 2
                   for pair in matches)

    def test_threshold_validated(self, lm_copy, matcher_factory):
        with pytest.raises(ValueError):
            ERPipeline(lm_copy, matcher_factory(lm_copy.feature_dim),
                       threshold=1.0)


class TestPersistence:
    def test_save_load_roundtrip(self, pipeline, tmp_path):
        directory = tmp_path / "pipe"
        pipeline.save(directory)
        loaded = ERPipeline.load(directory)
        ds = load_dataset("fz", scale=0.1, seed=0)
        original = pipeline.score_pairs(ds.pairs[:4])
        reloaded = loaded.score_pairs(ds.pairs[:4])
        for a, b in zip(original, reloaded):
            assert a.probability == pytest.approx(b.probability, abs=1e-9)

    def test_saved_files_present(self, pipeline, tmp_path):
        directory = tmp_path / "pipe"
        pipeline.save(directory)
        for name in ("extractor.npz", "matcher.npz", "vocab.txt",
                     "pipeline.json"):
            assert (directory / name).exists()

    def test_load_preserves_blocker_config(self, lm_copy, matcher_factory,
                                           tmp_path):
        pipeline = ERPipeline(lm_copy, matcher_factory(lm_copy.feature_dim),
                              blocker=OverlapBlocker(min_overlap=3,
                                                     stop_fraction=0.4),
                              threshold=0.7)
        pipeline.save(tmp_path / "p")
        loaded = ERPipeline.load(tmp_path / "p")
        assert loaded.blocker.min_overlap == 3
        assert loaded.threshold == 0.7

    def test_load_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ERPipeline.load(tmp_path / "missing")
