"""Corruption matrix for the checkpoint cache: every damage class must
regenerate, quarantine, and log — never crash.

This pins the headline bug: the seed repo shipped two mini-LM checkpoints
whose zip end-of-central-directory record was damaged, and ``pretrained_lm``
trusted any file that merely existed, so the whole suite died with
``zipfile.BadZipFile``.  Each test here hands the cache a differently broken
archive and asserts the three self-healing guarantees.

Run just this matrix with ``pytest -m corruption``.
"""

import multiprocessing
import os

import numpy as np
import pytest

from repro.artifacts import ArtifactStatus, ArtifactStore
from repro.pretrain import pretrained_lm

pytestmark = pytest.mark.corruption

LM = dict(dim=16, num_layers=1, num_heads=2, max_len=48,
          corpus_scale=0.01, steps=2, seed=0)
KEY = "minilm_d16_l1_h2_t48_c0.01_s2_r0"


@pytest.fixture(scope="module")
def valid_cache_bytes(tmp_path_factory):
    """Bytes of a known-good checkpoint pair, built once for the module."""
    root = tmp_path_factory.mktemp("pristine")
    previous = os.environ.get("REPRO_CACHE")
    os.environ["REPRO_CACHE"] = str(root)
    try:
        pretrained_lm(**LM)
    finally:
        if previous is None:
            del os.environ["REPRO_CACHE"]
        else:
            os.environ["REPRO_CACHE"] = previous
    return {
        "npz": (root / f"{KEY}.npz").read_bytes(),
        "vocab": (root / f"{KEY}.vocab.txt").read_bytes(),
    }


@pytest.fixture()
def seeded_cache(valid_cache_bytes, tmp_path, monkeypatch):
    """A fresh cache dir pre-populated with the valid pair (no manifest),
    mimicking shipped/committed cache files that predate the store."""
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
    (tmp_path / f"{KEY}.npz").write_bytes(valid_cache_bytes["npz"])
    (tmp_path / f"{KEY}.vocab.txt").write_bytes(valid_cache_bytes["vocab"])
    return tmp_path


def _assert_healed(cache, caplog):
    """The shared postcondition: usable LM, quarantined original, log line."""
    with caplog.at_level("WARNING", logger="repro.artifacts"):
        extractor, vocab = pretrained_lm(**LM)
    assert extractor.dim == LM["dim"]
    assert list(cache.glob("*.corrupt*")), "damaged file was not quarantined"
    assert "corrupt" in caplog.text
    # And the regenerated pair must now load clean, as a plain cache hit.
    again, __ = pretrained_lm(**LM)
    np.testing.assert_allclose(
        again.token_embedding.weight.data,
        extractor.token_embedding.weight.data)
    status, __ = ArtifactStore(cache).classify(f"{KEY}.npz")
    assert status is ArtifactStatus.VALID


class TestCorruptionMatrix:
    def test_truncated_zip(self, seeded_cache, caplog):
        npz = seeded_cache / f"{KEY}.npz"
        npz.write_bytes(npz.read_bytes()[: npz.stat().st_size // 2])
        _assert_healed(seeded_cache, caplog)

    def test_bad_eocd_offset(self, seeded_cache, caplog):
        """Byte-patch the archive tail — the exact damage the two shipped
        seed checkpoints carry (EOCD record no longer parses)."""
        npz = seeded_cache / f"{KEY}.npz"
        data = bytearray(npz.read_bytes())
        data[-22:] = b"\x00" * 22  # stomp the end-of-central-directory
        npz.write_bytes(bytes(data))
        _assert_healed(seeded_cache, caplog)

    def test_empty_file(self, seeded_cache, caplog):
        (seeded_cache / f"{KEY}.npz").write_bytes(b"")
        _assert_healed(seeded_cache, caplog)

    def test_missing_keys(self, seeded_cache, caplog):
        """A structurally valid npz whose arrays are not the module's
        parameters (wrong/renamed keys)."""
        np.savez_compressed(seeded_cache / f"{KEY}.npz",
                            not_a_parameter=np.ones(3))
        _assert_healed(seeded_cache, caplog)

    def test_vocab_weights_mismatch(self, seeded_cache, caplog):
        """A well-formed vocabulary of the wrong size: embedding shapes no
        longer match the archive, so the pair must be rebuilt together."""
        from repro.pretrain.cache import _save_vocab
        from repro.text import Vocabulary
        _save_vocab(Vocabulary(["alpha", "beta", "gamma"]),
                    seeded_cache / f"{KEY}.vocab.txt")
        _assert_healed(seeded_cache, caplog)

    def test_truncated_vocab(self, seeded_cache, caplog):
        (seeded_cache / f"{KEY}.vocab.txt").write_text("[PAD]\n[UNK]")
        _assert_healed(seeded_cache, caplog)

    def test_checksum_mismatch_without_format_damage(self, seeded_cache,
                                                     caplog, monkeypatch):
        """Silent same-size content swap: only the manifest hash catches it."""
        monkeypatch.setenv("REPRO_CACHE", str(seeded_cache))
        pretrained_lm(**LM)  # a hit, which leaves manifest entries in place
        store = ArtifactStore(seeded_cache)
        store.write(f"{KEY}.npz",
                    lambda tmp: np.savez_compressed(tmp, w=np.ones(2)))
        # Restore the *valid* original bytes behind the manifest's back: the
        # format is fine, but the recorded hash no longer matches.
        raw = (seeded_cache / f"{KEY}.npz").read_bytes()

        status, reason = store.classify(f"{KEY}.npz")
        assert status is ArtifactStatus.VALID  # store's own write: trusted
        (seeded_cache / f"{KEY}.npz").write_bytes(
            raw[:-1] + bytes([raw[-1] ^ 0xFF]))
        status, reason = store.classify(f"{KEY}.npz")
        assert status is ArtifactStatus.CORRUPT
        assert "checksum" in reason
        _assert_healed(seeded_cache, caplog)


def _concurrent_pretrain(cache_dir, queue):
    os.environ["REPRO_CACHE"] = str(cache_dir)
    try:
        extractor, __ = pretrained_lm(**LM)
        queue.put(("ok", float(extractor.token_embedding.weight.data.sum())))
    except Exception as exc:  # pragma: no cover - failure reporting path
        queue.put(("error", repr(exc)))


class TestConcurrentRegeneration:
    def test_two_processes_race_cleanly(self, tmp_path):
        """Two cold-cache processes must not torn-write the checkpoint: the
        per-key lock serialises regeneration and both load a valid LM."""
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        workers = [ctx.Process(target=_concurrent_pretrain,
                               args=(tmp_path, queue)) for __ in range(2)]
        for worker in workers:
            worker.start()
        results = [queue.get(timeout=120) for __ in workers]
        for worker in workers:
            worker.join(timeout=120)
        assert all(kind == "ok" for kind, __ in results), results
        status, reason = ArtifactStore(tmp_path).classify(f"{KEY}.npz")
        assert status is ArtifactStatus.VALID, reason
