"""Scenario pair streams through the serving stack, bit-identical.

Satellite to the scenario harness: the Record Linking and imbalanced Open
Matching streams (the two shapes production traffic actually takes —
cross-table linking and skewed open-world probing) are routed through
:class:`SequentialScorer`, a four-worker :class:`ParallelScorer`, and an
in-process daemon, and every engine's `MatchDecision` list must be
bit-identical to a direct :meth:`ERPipeline.score_pairs` call driven by the
same scheduler configuration.  The legacy full-padding reference is held to
the 1e-9 cross-policy contract (DESIGN.md §6b).
"""

import numpy as np
import pytest

from repro.datasets import generate_corpus, spec_for
from repro.pipeline import ERPipeline
from repro.scenarios import build_scenario
from repro.serve import (BatchScheduler, DaemonClient, DaemonConfig,
                         ModelRegistry, ParallelScorer, SequentialScorer,
                         start_daemon_thread)

STREAMS = [("record_linking", "balanced"), ("open_matching", "imbalanced")]


@pytest.fixture(scope="module")
def served(tmp_path_factory, tiny_lm):
    """A live pipeline plus its persisted snapshot directory."""
    from repro.matcher import MlpMatcher
    from repro.pretrain import fresh_copy
    extractor = fresh_copy(tiny_lm[0], seed=0)
    extractor.eval()
    matcher = MlpMatcher(extractor.feature_dim, np.random.default_rng(0))
    matcher.eval()
    pipeline = ERPipeline(extractor, matcher)
    directory = tmp_path_factory.mktemp("scenario_serve") / "pipeline"
    pipeline.save(directory)
    return pipeline, directory


@pytest.fixture(scope="module")
def streams():
    corpus = generate_corpus(spec_for("fodors_zagats"), num_families=12,
                             family_size=3, seed=3)
    return {(scenario, variant):
            list(build_scenario(corpus, scenario, variant, num_pairs=40,
                                seed=3).dataset.pairs)
            for scenario, variant in STREAMS}


@pytest.mark.parametrize("stream", STREAMS, ids="/".join)
def test_engines_bit_identical_to_direct_pipeline(served, streams, stream):
    pipeline, directory = served
    pairs = streams[stream]
    scheduler = BatchScheduler(pipeline.extractor.vocab,
                               pipeline.extractor.max_len)
    direct = pipeline.score_pairs(pairs, scheduler=scheduler)

    sequential = SequentialScorer(pipeline).score_pairs(pairs)
    assert sequential == direct

    with ParallelScorer(directory, num_workers=4) as scorer:
        assert scorer.score_pairs(pairs) == direct

    registry = ModelRegistry()
    registry.publish("default", directory)
    try:
        with start_daemon_thread(registry, DaemonConfig(port=0)) as handle:
            host, port = handle.address
            with DaemonClient(host, port) as client:
                assert client.score(pairs).decisions == direct
    finally:
        registry.close()


@pytest.mark.parametrize("stream", STREAMS, ids="/".join)
def test_reference_policy_within_tolerance(served, streams, stream):
    pipeline, __ = served
    pairs = streams[stream]
    scheduler = BatchScheduler(pipeline.extractor.vocab,
                               pipeline.extractor.max_len)
    direct = pipeline.score_pairs(pairs, scheduler=scheduler)
    reference = pipeline.score_pairs(pairs)
    assert [(d.left_id, d.right_id) for d in direct] == \
        [(d.left_id, d.right_id) for d in reference]
    for fast, ref in zip(direct, reference):
        assert abs(fast.probability - ref.probability) <= 1e-9
        assert fast.is_match == ref.is_match
