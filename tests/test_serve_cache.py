"""Tests for the content-addressed score cache and the request dedup pass.

The invariant under test everywhere: caching and deduplication are pure
plumbing.  A cached, deduplicated run must produce MatchDecision lists
**bit-identical** to an uncached run — across worker counts, across
persistence round-trips, and across every edge shape (overlong pairs,
empty-token pairs, 100%-duplicate requests).  The cache key pairs the
snapshot's manifest digest with a content hash of the encoded token ids,
so a republished snapshot can never serve stale probabilities.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Entity, EntityPair
from repro.pipeline import ERPipeline
from repro.serve import (BatchScheduler, ParallelScorer, ScoreCache,
                         SequentialScorer, pair_key)
from repro.text import Vocabulary


def _pairs(texts):
    return [EntityPair(Entity(f"l{i}", {"name": text}),
                       Entity(f"r{i}", {"name": text[::-1]}))
            for i, text in enumerate(texts)]


@pytest.fixture(scope="module")
def cached_pipeline(tmp_path_factory, tiny_lm):
    """A digest-carrying pipeline plus its snapshot directory."""
    from repro.matcher import MlpMatcher
    from repro.pretrain import fresh_copy
    extractor = fresh_copy(tiny_lm[0], seed=0)
    extractor.eval()
    matcher = MlpMatcher(extractor.feature_dim, np.random.default_rng(0))
    matcher.eval()
    pipeline = ERPipeline(extractor, matcher)
    directory = tmp_path_factory.mktemp("serve_cache") / "pipeline"
    pipeline.save(directory)
    return pipeline, directory


class TestPairKey:
    def test_deterministic_and_content_sensitive(self):
        assert pair_key([1, 2, 3]) == pair_key([1, 2, 3])
        assert pair_key([1, 2, 3]) != pair_key([3, 2, 1])  # order matters
        assert pair_key([1, 2]) != pair_key([1, 2, 2])     # length matters
        assert pair_key([]) == pair_key([])                # empty is valid

    def test_numpy_and_list_inputs_agree(self):
        assert pair_key(np.asarray([5, 6, 7])) == pair_key([5, 6, 7])

    def test_truncation_makes_overlong_pairs_collide_on_purpose(self, tiny_lm):
        """Keys hash the *truncated* encoding — exactly what gets scored.

        Two pairs identical up to max_len score identically by construction,
        so sharing a cache entry is correct, not a collision bug.
        """
        extractor = tiny_lm[0]
        scheduler = BatchScheduler(extractor.vocab, max_len=8)
        long_a = _pairs(["alpha " * 50])[0]
        long_b = _pairs(["alpha " * 60])[0]
        key_a, key_b = (pair_key(seq)
                        for seq in scheduler.encode([long_a, long_b]))
        assert key_a == key_b
        full = BatchScheduler(extractor.vocab, max_len=256)
        assert (pair_key(full.encode([long_a])[0])
                != pair_key(full.encode([long_b])[0]))


class TestMemoryTier:
    def test_roundtrip_and_stats(self):
        cache = ScoreCache(capacity=4)
        assert cache.get("digest", "k") is None
        cache.put("digest", "k", 0.25)
        assert cache.get("digest", "k") == 0.25
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5 and stats["entries"] == 1

    def test_lru_evicts_least_recently_used(self):
        cache = ScoreCache(capacity=2)
        cache.put("d", "a", 0.1)
        cache.put("d", "b", 0.2)
        assert cache.get("d", "a") == 0.1  # refresh "a"; "b" is now LRU
        cache.put("d", "c", 0.3)
        assert cache.stats()["evictions"] == 1
        assert cache.get("d", "b") is None
        assert cache.get("d", "a") == 0.1
        assert cache.get("d", "c") == 0.3

    def test_digests_are_isolated(self):
        cache = ScoreCache(capacity=8)
        cache.put("digest-one", "k", 0.7)
        assert cache.get("digest-two", "k") is None
        assert cache.get("digest-one", "k") == 0.7

    def test_refuses_non_finite_probabilities(self):
        cache = ScoreCache(capacity=4)
        with pytest.raises(ValueError, match="non-finite"):
            cache.put("d", "k", float("nan"))
        with pytest.raises(ValueError, match="non-finite"):
            cache.put("d", "k", float("inf"))

    def test_vector_lookup_marks_misses_with_nan(self):
        cache = ScoreCache(capacity=4)
        cache.put("d", "hit", 0.5)
        out = cache.lookup("d", ["hit", "miss"])
        assert out[0] == 0.5 and np.isnan(out[1])

    def test_put_many_validates_lengths(self):
        cache = ScoreCache(capacity=4)
        with pytest.raises(ValueError, match="length"):
            cache.put_many("d", ["a", "b"], np.asarray([0.1]))


class TestPersistentTier:
    def test_flush_then_fresh_instance_hits(self, tmp_path):
        first = ScoreCache(capacity=8, directory=tmp_path)
        first.put("digest", "k1", 0.125)
        first.put("digest", "k2", 0.875)
        assert first.flush() is not None
        second = ScoreCache(capacity=8, directory=tmp_path)
        assert second.get("digest", "k1") == 0.125
        assert second.get("digest", "k2") == 0.875
        assert second.stats()["hits"] == 2

    def test_new_snapshot_digest_never_sees_old_shard(self, tmp_path):
        cache = ScoreCache(capacity=8, directory=tmp_path)
        cache.put("digest-old", "k", 0.5)
        cache.flush()
        fresh = ScoreCache(capacity=8, directory=tmp_path)
        assert fresh.get("digest-new", "k") is None  # republished snapshot
        assert fresh.get("digest-old", "k") == 0.5

    def test_corrupt_shard_heals_cold_instead_of_crashing(self, tmp_path):
        cache = ScoreCache(capacity=8, directory=tmp_path)
        cache.put("digest", "k", 0.5)
        path = cache.flush()
        path.write_bytes(b"not an npz archive at all")
        survivor = ScoreCache(capacity=8, directory=tmp_path)
        assert survivor.get("digest", "k") is None  # cold, not poisoned
        survivor.put("digest", "k", 0.5)
        assert survivor.flush() is not None  # healed: shard rewritten
        healed = ScoreCache(capacity=8, directory=tmp_path)
        assert healed.get("digest", "k") == 0.5

    def test_dirty_evictions_survive_via_flush(self, tmp_path):
        cache = ScoreCache(capacity=1, directory=tmp_path)
        for i in range(3):  # two LRU evictions of never-flushed entries
            cache.put("digest", f"k{i}", i / 4.0)
        assert cache.stats()["evictions"] == 2
        cache.flush()
        fresh = ScoreCache(capacity=8, directory=tmp_path)
        assert [fresh.get("digest", f"k{i}") for i in range(3)] == \
            [0.0, 0.25, 0.5]


class TestEngineCaching:
    def test_live_pipeline_without_digest_is_rejected(self, tiny_lm):
        from repro.matcher import MlpMatcher
        from repro.pretrain import fresh_copy
        extractor = fresh_copy(tiny_lm[0], seed=0)
        matcher = MlpMatcher(extractor.feature_dim, np.random.default_rng(0))
        unsaved = ERPipeline(extractor, matcher)  # never saved: no digest
        with pytest.raises(ValueError, match="manifest_digest"):
            SequentialScorer(unsaved, cache=ScoreCache(capacity=8))

    def test_warm_request_is_bit_identical_and_all_hits(self, cached_pipeline):
        pipeline, __ = cached_pipeline
        pairs = _pairs([f"record number {i}" for i in range(40)])
        baseline = SequentialScorer(pipeline).score_pairs(pairs)
        scorer = SequentialScorer(pipeline, cache=ScoreCache(capacity=1024))
        cold = scorer.score_pairs(pairs)
        warm = scorer.score_pairs(pairs)
        assert cold == baseline and warm == baseline
        assert scorer.last_metrics.cache["hit_rate"] == 1.0
        assert scorer.last_metrics.cache["misses"] == 0

    @pytest.mark.parametrize("num_workers", [1, 4])
    def test_parallel_cached_bit_identical_across_workers(
            self, cached_pipeline, num_workers):
        pipeline, directory = cached_pipeline
        pairs = _pairs([f"w{i % 7} item {i % 13}" for i in range(60)])
        baseline = SequentialScorer(pipeline).score_pairs(pairs)
        cache = ScoreCache(capacity=1024)
        with ParallelScorer(directory, num_workers=num_workers,
                            cache=cache) as scorer:
            cold = scorer.score_pairs(pairs)
            warm = scorer.score_pairs(pairs)
            warm_stats = scorer.last_metrics.cache
        assert cold == baseline
        assert warm == baseline
        assert warm_stats["hit_rate"] == 1.0

    def test_republished_snapshot_invalidates_cache(self, tmp_path, tiny_lm):
        from repro.matcher import MlpMatcher
        from repro.pretrain import fresh_copy
        extractor = fresh_copy(tiny_lm[0], seed=0)
        extractor.eval()
        matcher = MlpMatcher(extractor.feature_dim, np.random.default_rng(0))
        matcher.eval()
        pipeline = ERPipeline(extractor, matcher)
        directory = tmp_path / "snapshot"
        pipeline.save(directory)
        old_digest = pipeline.manifest_digest

        cache = ScoreCache(capacity=1024)
        pairs = _pairs([f"entry {i}" for i in range(10)])
        SequentialScorer(pipeline, cache=cache).score_pairs(pairs)
        before = cache.stats()

        pipeline.threshold = 0.25  # republish with changed config
        pipeline.save(directory)
        assert pipeline.manifest_digest != old_digest

        republished = ERPipeline.load(directory)
        scorer = SequentialScorer(republished, cache=cache)
        scorer.score_pairs(pairs)
        after = cache.stats()
        assert after["hits"] == before["hits"]          # nothing reused
        assert after["misses"] - before["misses"] == len(pairs)

    def test_fully_duplicate_request_scores_once(self, cached_pipeline):
        pipeline, __ = cached_pipeline
        pairs = _pairs(["identical text"] * 50)
        cache = ScoreCache(capacity=1024)
        scorer = SequentialScorer(pipeline, cache=cache)
        cold = scorer.score_pairs(pairs)
        assert len({d.probability for d in cold}) == 1
        assert cache.stats()["entries"] == 1  # one score for 50 positions
        warm = scorer.score_pairs(pairs)
        assert warm == cold
        assert scorer.last_metrics.cache["hits"] == 50

    def test_empty_token_pairs_are_cacheable(self, cached_pipeline):
        pipeline, __ = cached_pipeline
        empty = [EntityPair(Entity(f"l{i}", {}), Entity(f"r{i}", {}))
                 for i in range(3)]
        scorer = SequentialScorer(pipeline, cache=ScoreCache(capacity=8))
        cold = scorer.score_pairs(empty)
        warm = scorer.score_pairs(empty)
        assert warm == cold
        assert all(np.isfinite(d.probability) for d in cold)
        assert scorer.last_metrics.cache["hit_rate"] == 1.0

    def test_overlong_pairs_cached_and_bit_identical(self, cached_pipeline):
        pipeline, __ = cached_pipeline
        pairs = _pairs(["tok " * 200, "tok " * 300, "short"])
        baseline = SequentialScorer(pipeline).score_pairs(pairs)
        scorer = SequentialScorer(pipeline, cache=ScoreCache(capacity=8))
        assert scorer.score_pairs(pairs) == baseline
        assert scorer.score_pairs(pairs) == baseline

    def test_unscored_position_raises_instead_of_emitting_garbage(
            self, cached_pipeline):
        pipeline, __ = cached_pipeline

        class DroppingScheduler(BatchScheduler):
            def schedule_encoded(self, encoded, positions=None):
                batches = list(super().schedule_encoded(encoded, positions))
                yield from batches[:-1]  # silently lose the last batch

        scheduler = DroppingScheduler(pipeline.extractor.vocab,
                                      pipeline.extractor.max_len,
                                      max_batch_pairs=4)
        scorer = SequentialScorer(pipeline, scheduler)
        with pytest.raises(RuntimeError, match="unscored"):
            scorer.score_pairs(_pairs([f"row {i}" for i in range(12)]))


class TestConcurrentSafety:
    """The daemon hits one shared ScoreCache from many threads at once.

    Before the lock these hammers corrupted the LRU OrderedDict mid-
    iteration (move_to_end/popitem racing get) and lost eviction spills;
    now every interleaving must keep the capacity invariant and the
    counters coherent.
    """

    def test_hammer_many_threads_no_corruption(self):
        cache = ScoreCache(capacity=64)
        num_threads = 8
        barrier = threading.Barrier(num_threads)
        errors = []

        def worker(seed):
            try:
                barrier.wait()
                rng = np.random.default_rng(seed)
                for step in range(400):
                    digest = f"d{int(rng.integers(0, 3))}"
                    key = f"k{int(rng.integers(0, 200))}"
                    if rng.random() < 0.5:
                        cache.put(digest, key, float(rng.random()))
                    else:
                        value = cache.get(digest, key)
                        assert value is None or 0.0 <= value <= 1.0
                    if step % 97 == 0:
                        cache.lookup(digest, [f"k{j}" for j in range(5)])
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(seed,))
                   for seed in range(num_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(cache) <= 64  # LRU invariant survived every interleaving
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] > 0
        assert stats["entries"] == len(cache)

    def test_hammer_with_concurrent_flush_keeps_values_exact(self, tmp_path):
        """Writers + a flushing thread: persisted values stay bit-exact."""
        cache = ScoreCache(capacity=8, directory=tmp_path)
        stop = threading.Event()
        errors = []

        def value_of(index):
            return (index % 64) / 64.0

        def writer(offset):
            try:
                for i in range(offset, offset + 150):
                    cache.put("digest", f"k{i}", value_of(i))
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        def flusher():
            try:
                while not stop.is_set():
                    cache.flush()
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        flush_thread = threading.Thread(target=flusher)
        write_threads = [threading.Thread(target=writer, args=(offset,))
                         for offset in (0, 150, 300)]
        flush_thread.start()
        for thread in write_threads:
            thread.start()
        for thread in write_threads:
            thread.join()
        stop.set()
        flush_thread.join()
        cache.flush()
        assert errors == []
        reloaded = ScoreCache(capacity=8, directory=tmp_path)
        seen = 0
        for i in range(450):
            value = reloaded.get("digest", f"k{i}")
            if value is not None:  # never torn, never wrong
                assert value == value_of(i)
                seen += 1
        assert seen == 450  # every dirty write survived via spill or flush


class TestOverlappingRuns:
    """Regression: per-run cache stats must not cross-count concurrent runs.

    The old implementation diffed the globally shared cache counters
    around each run, so overlapping run B's hits landed inside run A's
    delta.  Stats are now accumulated on each run's own meter: for N
    unique pairs, hits + misses == N for *every* run, whatever the
    interleaving.
    """

    def test_two_overlapping_runs_report_per_run_stats(self, cached_pipeline):
        pipeline, __ = cached_pipeline
        pairs = _pairs([f"overlap row {i}" for i in range(30)])
        baseline = SequentialScorer(pipeline).score_pairs(pairs)
        cache = ScoreCache(capacity=1024)
        barrier = threading.Barrier(2)
        results = {}

        def run(name):
            scorer = SequentialScorer(pipeline, cache=cache)
            barrier.wait()
            decisions = scorer.score_pairs(pairs)
            results[name] = (decisions, scorer.last_metrics)

        threads = [threading.Thread(target=run, args=(name,))
                   for name in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        for name in ("a", "b"):
            decisions, metrics = results[name]
            assert decisions == baseline
            stats = metrics.cache
            # The per-run books balance exactly; under the global-diff bug
            # the concurrent run's hits inflated this sum past len(pairs).
            assert stats["hits"] + stats["misses"] == len(pairs)
            assert 0.0 <= stats["hit_rate"] <= 1.0
        # And a warm follow-up run attributes every hit to itself.
        warm = SequentialScorer(pipeline, cache=cache)
        assert warm.score_pairs(pairs) == baseline
        assert warm.last_metrics.cache["hits"] == len(pairs)
        assert warm.last_metrics.cache["misses"] == 0


def _content_scores(batch):
    """A deterministic stand-in scorer: probability from row content only."""
    out = []
    for row in range(batch.num_pairs):
        real = int(batch.mask[row].sum())
        ids = tuple(batch.ids[row, :real].tolist())
        out.append((hash(ids) % 997) / 997.0)
    return np.asarray(out, dtype=np.float64)


@given(st.lists(st.lists(st.integers(0, 30), max_size=12), max_size=40))
@settings(max_examples=60, deadline=None)
def test_dedup_scatter_is_identity_on_decisions(sequences):
    """Property: dedup+scatter never changes what any position receives.

    With a scorer that is a pure function of row content, scheduling with
    dedup on and off must fill identical probability vectors — the dedup
    pass may only change *how often* content is scored, never *what* a
    position gets.
    """
    vocab = Vocabulary()
    outputs = []
    for dedup in (False, True):
        scheduler = BatchScheduler(vocab, max_len=16, max_batch_pairs=7,
                                   dedup=dedup)
        filled = np.full(len(sequences), np.nan)
        for batch in scheduler.schedule_encoded(sequences):
            batch.scatter(filled, _content_scores(batch))
        assert not np.isnan(filled).any()
        outputs.append(filled)
    np.testing.assert_array_equal(outputs[0], outputs[1])
