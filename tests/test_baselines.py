"""Tests for Reweight, supervised baselines, and active selection."""

import numpy as np
import pytest

from repro.active import (entropy_of_probabilities, max_entropy_rounds,
                          select_max_entropy)
from repro.baselines import (embed_dataset, hashed_pair_embedding,
                             source_weights, train_reweight,
                             train_deepmatcher, train_ditto)
from repro.data import supervised_split
from repro.datasets import load_dataset
from repro.train import TrainConfig


class TestHashedEmbedding:
    def test_deterministic(self):
        ds = load_dataset("fz", scale=0.05, seed=0)
        a = hashed_pair_embedding(ds.pairs[0])
        b = hashed_pair_embedding(ds.pairs[0])
        np.testing.assert_array_equal(a, b)

    def test_dimension(self):
        ds = load_dataset("fz", scale=0.05, seed=0)
        assert hashed_pair_embedding(ds.pairs[0], dim=64).shape == (64,)

    def test_overlap_slot_higher_for_matches(self):
        ds = load_dataset("dblp_acm", scale=0.03, seed=0)
        match_overlap = np.mean([hashed_pair_embedding(p)[-1]
                                 for p in ds if p.label == 1])
        other_overlap = np.mean([hashed_pair_embedding(p)[-1]
                                 for p in ds if p.label == 0])
        assert match_overlap > other_overlap

    def test_embed_dataset_shape(self):
        ds = load_dataset("fz", scale=0.05, seed=0)
        matrix = embed_dataset(ds, dim=32)
        assert matrix.shape == (len(ds), 32)


class TestSourceWeights:
    def test_mean_one(self):
        rng = np.random.default_rng(0)
        weights = source_weights(rng.normal(size=(30, 8)),
                                 rng.normal(size=(20, 8)))
        assert weights.mean() == pytest.approx(1.0)

    def test_similar_instances_weighted_up(self):
        rng = np.random.default_rng(1)
        target = rng.normal(size=(40, 4))
        near = target[:10] + 0.01
        far = rng.normal(size=(10, 4)) + 8.0
        weights = source_weights(np.concatenate([near, far]), target)
        assert weights[:10].mean() > weights[10:].mean() * 2

    def test_all_far_degrades_gracefully(self):
        source = np.full((5, 3), 1000.0)
        target = np.zeros((5, 3))
        weights = source_weights(source, target, bandwidth=1.0)
        assert np.isfinite(weights).all()


class TestReweight:
    def test_end_to_end(self):
        source = load_dataset("fz", scale=0.2, seed=0)
        target = load_dataset("zy", scale=0.2, seed=0)
        result = train_reweight(source, target.without_labels(), target,
                                epochs=30, seed=0)
        assert 0.0 <= result.best_f1 <= 100.0
        assert len(result.weights) == len(source)

    def test_rejects_unlabeled_source(self):
        source = load_dataset("fz", scale=0.05, seed=0).without_labels()
        target = load_dataset("zy", scale=0.05, seed=0)
        with pytest.raises(ValueError):
            train_reweight(source, target, target)

    def test_same_domain_learns_signal(self):
        # Train and test on the same distribution: the hashed-overlap
        # features are informative, so F1 must clearly beat zero.
        data = load_dataset("dblp_acm", scale=0.1, seed=0)
        result = train_reweight(data, data.without_labels(), data,
                                epochs=80, seed=0)
        assert result.best_f1 > 50.0


class TestSupervisedBaselines:
    def test_deepmatcher_runs(self):
        data = load_dataset("fz", scale=0.3, seed=0)
        train, valid, test = supervised_split(data,
                                              np.random.default_rng(0))
        cfg = TrainConfig(epochs=2, batch_size=16, iterations_per_epoch=4,
                          seed=0)
        result = train_deepmatcher(train, valid, test, cfg, max_len=80)
        assert result.method == "deepmatcher"
        assert len(result.history) == 2

    def test_ditto_runs(self, tiny_lm):
        base, __ = tiny_lm
        data = load_dataset("fz", scale=0.3, seed=0)
        train, valid, test = supervised_split(data,
                                              np.random.default_rng(0))
        cfg = TrainConfig(epochs=2, batch_size=16, iterations_per_epoch=4,
                          seed=0)
        result = train_ditto(base, train, valid, test, cfg)
        assert result.method == "ditto"


class TestActiveSelection:
    def test_entropy_peaks_at_half(self):
        entropy = entropy_of_probabilities(np.array([0.01, 0.5, 0.99]))
        assert entropy[1] > entropy[0]
        assert entropy[1] > entropy[2]
        assert entropy[1] == pytest.approx(np.log(2))

    def test_entropy_handles_extremes(self):
        entropy = entropy_of_probabilities(np.array([0.0, 1.0]))
        assert np.isfinite(entropy).all()

    def test_select_max_entropy(self, lm_copy, matcher_factory):
        pool = load_dataset("fz", scale=0.2, seed=0)
        matcher = matcher_factory(lm_copy.feature_dim)
        picked = select_max_entropy(lm_copy, matcher, pool, budget=5)
        assert len(picked) == 5
        assert len(set(picked)) == 5

    def test_select_respects_exclusions(self, lm_copy, matcher_factory):
        pool = load_dataset("fz", scale=0.2, seed=0)
        matcher = matcher_factory(lm_copy.feature_dim)
        first = select_max_entropy(lm_copy, matcher, pool, budget=3)
        second = select_max_entropy(lm_copy, matcher, pool, budget=3,
                                    exclude=first)
        assert not set(first) & set(second)

    def test_select_validates_budget(self, lm_copy, matcher_factory):
        pool = load_dataset("fz", scale=0.1, seed=0)
        matcher = matcher_factory(lm_copy.feature_dim)
        with pytest.raises(ValueError):
            select_max_entropy(lm_copy, matcher, pool, budget=0)

    def test_random_rounds_cumulative(self):
        pool = load_dataset("fz", scale=0.3, seed=0)
        rounds = max_entropy_rounds(pool, per_round=10, rounds=3,
                                    rng=np.random.default_rng(0))
        assert [len(r) for r in rounds] == [10, 20, 30]
        assert set(rounds[0]) <= set(rounds[1]) <= set(rounds[2])

    def test_rounds_validate_pool_size(self):
        pool = load_dataset("fz", scale=0.05, seed=0)
        with pytest.raises(ValueError):
            max_entropy_rounds(pool, per_round=1000, rounds=5,
                               rng=np.random.default_rng(0))
