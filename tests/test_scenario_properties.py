"""Hypothesis property tests for the cluster-label contract.

The scenario grid is only trustworthy if the ground truth it derives from
is: (1) the label relation is cluster-id equality — reflexive-consistent
and transitive across every pair any scenario emits; (2) open-world
clusters are disjoint from everything the adaptation split can see; and
(3) the imbalanced variants actually realize their configured skew.  These
properties are asserted over randomly drawn corpus shapes, not one blessed
example.
"""

from hypothesis import given, settings, strategies as st

from repro.datasets import generate_corpus, spec_for
from repro.scenarios import (POSITIVE_RATE_TOLERANCE, POSITIVE_RATES,
                             SCENARIOS, adaptation_dataset, build_scenario)

SETTINGS = settings(max_examples=20, deadline=None)

#: Corpus shapes kept small (each example renders a full corpus) but big
#: enough that every scenario's positive/negative pools stay feasible.
CORPUS_SHAPES = st.fixed_dictionaries({
    "num_families": st.integers(6, 12),
    "family_size": st.integers(2, 3),
    "seed": st.integers(0, 50),
})

SPEC = spec_for("fodors_zagats")


def _corpus(shape):
    return generate_corpus(SPEC, num_families=shape["num_families"],
                           family_size=shape["family_size"],
                           seed=shape["seed"])


class TestLabelConsistency:
    @SETTINGS
    @given(CORPUS_SHAPES, st.sampled_from(SCENARIOS))
    def test_labels_agree_with_cluster_ids(self, shape, scenario):
        """Same cluster => positive, different cluster => negative."""
        corpus = _corpus(shape)
        cell = build_scenario(corpus, scenario, "balanced", num_pairs=40,
                              seed=shape["seed"])
        for pair in cell.dataset.pairs:
            same = (corpus.cluster_of(pair.left.entity_id)
                    == corpus.cluster_of(pair.right.entity_id))
            assert pair.label == int(same)

    @SETTINGS
    @given(CORPUS_SHAPES)
    def test_positive_relation_is_transitive(self, shape):
        """Union-find over emitted positives never merges two clusters.

        If a ~ b and b ~ c are both labeled positive anywhere in the grid,
        then a ~ c must be positive too — i.e. the connected components of
        the positive relation coincide with the clusters.
        """
        corpus = _corpus(shape)
        parent = {}

        def find(x):
            parent.setdefault(x, x)
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(x, y):
            parent[find(x)] = find(y)

        for scenario in SCENARIOS:
            cell = build_scenario(corpus, scenario, "balanced", num_pairs=40,
                                  seed=shape["seed"])
            for pair in cell.dataset.pairs:
                if pair.label == 1:
                    union(pair.left.entity_id, pair.right.entity_id)
        # Every component must sit inside exactly one cluster.
        components = {}
        for entity_id in parent:
            components.setdefault(find(entity_id), set()).add(
                corpus.cluster_of(entity_id))
        for clusters in components.values():
            assert len(clusters) == 1, \
                f"positive relation bridged clusters {clusters}"


class TestOpenWorldDisjointness:
    @SETTINGS
    @given(CORPUS_SHAPES)
    def test_adaptation_split_never_sees_open_clusters(self, shape):
        corpus = _corpus(shape)
        dataset = adaptation_dataset(corpus, num_pairs=60,
                                     seed=shape["seed"])
        open_ids = corpus.open_cluster_ids
        assert open_ids, "corpus must hold out open-world clusters"
        seen_in_train = {corpus.cluster_of(p.left.entity_id)
                         for p in dataset.pairs}
        seen_in_train |= {corpus.cluster_of(p.right.entity_id)
                          for p in dataset.pairs}
        assert seen_in_train.isdisjoint(open_ids)

    @SETTINGS
    @given(CORPUS_SHAPES)
    def test_open_matching_always_exercises_unseen_entities(self, shape):
        corpus = _corpus(shape)
        cell = build_scenario(corpus, "open_matching", "balanced",
                              num_pairs=40, seed=shape["seed"])
        open_ids = corpus.open_cluster_ids
        for pair in cell.dataset.pairs:
            touched = {corpus.cluster_of(pair.left.entity_id),
                       corpus.cluster_of(pair.right.entity_id)}
            assert touched & open_ids


class TestImbalanceRealization:
    @SETTINGS
    @given(CORPUS_SHAPES, st.sampled_from(SCENARIOS))
    def test_imbalanced_variant_hits_configured_rate(self, shape, scenario):
        corpus = _corpus(shape)
        cell = build_scenario(corpus, scenario, "imbalanced", num_pairs=60,
                              seed=shape["seed"])
        want = POSITIVE_RATES["imbalanced"]
        assert abs(cell.positive_rate - want) <= POSITIVE_RATE_TOLERANCE
        assert cell.dataset.num_matches >= 1

    @SETTINGS
    @given(CORPUS_SHAPES, st.sampled_from(SCENARIOS))
    def test_balanced_variant_hits_configured_rate(self, shape, scenario):
        corpus = _corpus(shape)
        cell = build_scenario(corpus, scenario, "balanced", num_pairs=60,
                              seed=shape["seed"])
        want = POSITIVE_RATES["balanced"]
        assert abs(cell.positive_rate - want) <= POSITIVE_RATE_TOLERANCE
