"""Unit tests for the repro.resilience layer (tier 1 — no injected faults).

The chaos tier (``pytest -m chaos``, ``tests/test_failure_injection.py``)
proves the recovery paths end-to-end; these tests pin the pure machinery:
backoff schedules, event arithmetic, chaos-plan parsing, guard-rail
rollback semantics, and the engine's no-work/closed edge cases.
"""

import numpy as np
import pytest

from repro.data import Entity
from repro.matcher import MlpMatcher
from repro.resilience import (BackoffPolicy, ChaosConfig, Events, Fault,
                              GuardRail, RetryPolicy, SupervisedPool,
                              TrainingDiverged, merge_chaos)
from repro.serve.engine import ParallelScorer, _validate_probabilities


class TestBackoffPolicy:
    def test_schedule_is_deterministic(self):
        a = BackoffPolicy(seed=7).preview(6)
        b = BackoffPolicy(seed=7).preview(6)
        assert a == b

    def test_grows_then_caps(self):
        policy = BackoffPolicy(base=0.1, factor=2.0, cap=0.5, jitter=0.0)
        assert policy.preview(5) == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_stays_bounded(self):
        policy = BackoffPolicy(base=0.1, factor=2.0, cap=0.5, jitter=0.25)
        for delay in policy.preview(20):
            assert delay <= 0.5 * 1.25 + 1e-12

    def test_instant_never_sleeps(self):
        policy = BackoffPolicy.instant()
        assert policy.preview(10) == [0.0] * 10
        assert policy.sleep(3) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base=-1)
        with pytest.raises(ValueError):
            BackoffPolicy(factor=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=2.0)
        with pytest.raises(ValueError):
            BackoffPolicy().delay(-1)


class TestEvents:
    def test_delta_and_sum(self):
        before = Events(retries=2, crashes=1)
        after = Events(retries=5, crashes=1, respawns=3)
        delta = after - before
        assert delta.retries == 3 and delta.respawns == 3
        assert delta.crashes == 0
        assert (before + delta).to_dict() == after.to_dict()

    def test_bool_is_any_recovery(self):
        assert not Events()
        assert Events(rollbacks=1)

    def test_copy_is_independent(self):
        a = Events(retries=1)
        b = a.copy()
        b.retries += 1
        assert a.retries == 1

    def test_merge_accumulates_in_place(self):
        a = Events(retries=1)
        a.merge(Events(retries=2, quarantined=1))
        assert a.retries == 3 and a.quarantined == 1


class TestChaosConfig:
    def test_from_spec_round_trip(self):
        plan = ChaosConfig.from_spec(
            "crash:batch=2;hang:batch=5,worker=1,times=2,hang_seconds=9;"
            "garbage:times=always;nan_loss:step=3")
        kinds = [f.kind for f in plan.faults]
        assert kinds == ["crash", "hang", "garbage", "nan_loss"]
        assert plan.faults[1].hang_seconds == 9.0
        assert plan.faults[2].times is None
        assert plan.nan_loss_at(3) and not plan.nan_loss_at(4)

    def test_from_spec_rejects_junk(self):
        with pytest.raises(ValueError):
            ChaosConfig.from_spec("explode:batch=1")
        with pytest.raises(ValueError):
            ChaosConfig.from_spec("crash:batch")
        with pytest.raises(ValueError):
            ChaosConfig.from_spec("crash:color=red")

    def test_from_env(self):
        assert ChaosConfig.from_env(environ={}) is None
        plan = ChaosConfig.from_env(environ={"REPRO_CHAOS": "crash:batch=1"})
        assert plan.faults[0].batch == 1

    def test_times_gates_retries_deterministically(self):
        plan = ChaosConfig((Fault("crash", batch=2, times=1),))
        assert plan.fault_for(0, 2, 0) is not None
        # Attempt 1 (the retry) escapes the fault on ANY worker.
        assert plan.fault_for(0, 2, 1) is None
        assert plan.fault_for(3, 2, 1) is None
        assert plan.fault_for(0, 1, 0) is None

    def test_poison_fault_never_expires(self):
        plan = ChaosConfig((Fault("garbage", batch=0, times=None),))
        for attempt in range(10):
            assert plan.fault_for(attempt % 3, 0, attempt) is not None

    def test_merge(self):
        a = ChaosConfig((Fault("crash", batch=1),))
        b = ChaosConfig((Fault("hang", batch=2),))
        merged = merge_chaos([a, None, b])
        assert [f.kind for f in merged.faults] == ["crash", "hang"]
        assert merge_chaos([None, None]) is None

    def test_fault_validation(self):
        with pytest.raises(ValueError):
            Fault("meteor")
        with pytest.raises(ValueError):
            Fault("crash", times=0)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(batch_timeout=0)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(max_respawns=-1)
        RetryPolicy(batch_timeout=None)  # "no deadline" is allowed


def _square(state, payload):
    return payload * payload


def _no_setup():
    return None


class TestSupervisedPoolCleanRun:
    def test_every_payload_answered_exactly_once(self):
        with SupervisedPool(setup=_no_setup, setup_args=(), handle=_square,
                            num_workers=2,
                            policy=RetryPolicy(
                                backoff=BackoffPolicy.instant())) as pool:
            results = dict()
            for seq, result, busy, pid in pool.map_unordered([1, 2, 3, 4, 5]):
                assert seq not in results
                results[seq] = result
                assert busy >= 0.0
        assert results == {0: 1, 1: 4, 2: 9, 3: 16, 4: 25}
        assert pool.events.total() == 0

    def test_empty_mapping_is_a_noop(self):
        pool = SupervisedPool(setup=_no_setup, setup_args=(), handle=_square,
                              num_workers=1)
        assert list(pool.map_unordered([])) == []  # never even starts
        pool.close()

    def test_closed_pool_refuses_work(self):
        pool = SupervisedPool(setup=_no_setup, setup_args=(), handle=_square,
                              num_workers=1)
        pool.close()
        with pytest.raises(RuntimeError):
            list(pool.map_unordered([1]))


def _stub_optimizer(lr=1e-3):
    class _Opt:
        def __init__(self):
            self.lr = lr
    return _Opt()


class TestGuardRail:
    def test_healthy_steps_pass_through(self):
        matcher = MlpMatcher(4, np.random.default_rng(0))
        with GuardRail({"matcher": matcher}, [_stub_optimizer()]) as guard:
            for step in range(5):
                assert guard.observe(1.0 - 0.01 * step, epoch=0, step=step)
            assert guard.recoveries == 0
            assert guard.events.total() == 0

    def test_nan_loss_rolls_back_and_halves_lr(self):
        matcher = MlpMatcher(4, np.random.default_rng(0))
        optimizer = _stub_optimizer(lr=0.01)
        guard = GuardRail({"matcher": matcher}, [optimizer])
        snapshot = [p.data.copy() for p in matcher.parameters()]
        # Corrupt the live weights, then observe a NaN: the guard must
        # restore the snapshot, not keep the corruption.
        for param in matcher.parameters():
            param.data += 17.0
        assert guard.observe(float("nan"), epoch=0, step=0) is False
        for param, good in zip(matcher.parameters(), snapshot):
            np.testing.assert_array_equal(param.data, good)
        assert optimizer.lr == pytest.approx(0.005)
        assert guard.events.rollbacks == 1
        assert guard.events.lr_halvings == 1
        guard.close()

    def test_non_finite_gradient_is_rejected(self):
        matcher = MlpMatcher(4, np.random.default_rng(0))
        guard = GuardRail({"matcher": matcher}, [_stub_optimizer()])
        params = matcher.parameters()
        params[0].grad = np.full_like(params[0].data, np.inf)
        assert guard.observe(0.5, epoch=0, step=0, params=params) is False
        assert guard.incidents[0]["reason"] == "non-finite gradient"
        guard.close()

    def test_divergence_bound_trips_after_warmup(self):
        matcher = MlpMatcher(4, np.random.default_rng(0))
        guard = GuardRail({"matcher": matcher}, [_stub_optimizer()],
                          patience=5.0, warmup_steps=3)
        for step in range(4):
            assert guard.observe(1.0, epoch=0, step=step)
        assert guard.observe(100.0, epoch=0, step=4) is False
        assert "diverged loss" in guard.incidents[0]["reason"]
        guard.close()

    def test_bounded_recoveries_raise_with_history(self):
        matcher = MlpMatcher(4, np.random.default_rng(0))
        guard = GuardRail({"matcher": matcher}, [_stub_optimizer()],
                          max_recoveries=2, method="unit")
        with pytest.raises(TrainingDiverged) as exc_info:
            for step in range(10):
                guard.observe(float("inf"), epoch=1, step=step)
        diverged = exc_info.value
        assert diverged.method == "unit"
        assert diverged.recoveries == 2
        assert len(diverged.incidents) == 3  # two recovered + the fatal one
        assert diverged.epoch == 1
        guard.close()

    def test_chaos_nan_injection_targets_global_step(self):
        matcher = MlpMatcher(4, np.random.default_rng(0))
        guard = GuardRail({"matcher": matcher}, [_stub_optimizer()],
                          chaos=ChaosConfig((Fault("nan_loss", step=2),)))
        assert guard.observe(1.0, epoch=0, step=0)
        assert guard.observe(1.0, epoch=0, step=1)
        assert guard.observe(1.0, epoch=0, step=2) is False  # injected
        assert guard.observe(1.0, epoch=0, step=3)
        guard.close()

    def test_validation(self):
        matcher = MlpMatcher(4, np.random.default_rng(0))
        with pytest.raises(ValueError):
            GuardRail({}, [])
        with pytest.raises(ValueError):
            GuardRail({"m": matcher}, [], max_recoveries=-1)
        with pytest.raises(ValueError):
            GuardRail({"m": matcher}, [], patience=1.0)
        with pytest.raises(ValueError):
            GuardRail({"m": matcher}, [], ema_decay=1.5)


class TestOutputValidation:
    def _payload(self, rows=3):
        ids = np.zeros((rows, 4), dtype=np.int64)
        mask = np.ones((rows, 4), dtype=bool)
        return ids, mask

    def test_accepts_clean_probabilities(self):
        assert _validate_probabilities(self._payload(),
                                       np.array([0.1, 0.5, 0.9])) is None

    def test_rejects_wrong_type_shape_nan_and_range(self):
        payload = self._payload()
        assert "ndarray" in _validate_probabilities(payload, [0.1, 0.5, 0.9])
        assert "shape" in _validate_probabilities(payload,
                                                  np.array([0.1, 0.5]))
        assert "finite" in _validate_probabilities(
            payload, np.array([0.1, np.nan, 0.9]))
        assert "outside" in _validate_probabilities(
            payload, np.array([0.1, 0.5, 1.5]))


class TestScorerEdgeCases:
    @pytest.fixture()
    def snapshot_dir(self, tmp_path, tiny_lm):
        from repro.matcher import MlpMatcher
        from repro.pipeline import ERPipeline
        from repro.pretrain import fresh_copy
        extractor = fresh_copy(tiny_lm[0], seed=0)
        extractor.eval()
        matcher = MlpMatcher(extractor.feature_dim, np.random.default_rng(0))
        matcher.eval()
        ERPipeline(extractor, matcher).save(tmp_path / "pipeline")
        return tmp_path / "pipeline"

    def test_empty_pairs_never_spin_up_workers(self, snapshot_dir):
        with ParallelScorer(snapshot_dir, num_workers=2) as scorer:
            assert scorer.score_pairs([]) == []
            assert scorer._supervisor is None
            assert scorer.last_metrics.num_pairs == 0

    def test_empty_blocker_output_never_spins_up_workers(self, snapshot_dir):
        with ParallelScorer(snapshot_dir, num_workers=2) as scorer:
            # Disjoint vocabularies: the overlap blocker emits nothing.
            left = [Entity("l0", {"name": "aardvark"})]
            right = [Entity("r0", {"name": "zyzzyva"})]
            assert list(scorer.score_tables(left, right)) == []
            assert scorer._supervisor is None

    def test_closed_scorer_refuses_parallel_work(self, snapshot_dir):
        scorer = ParallelScorer(snapshot_dir, num_workers=1)
        scorer.close()
        scorer.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            scorer._ensure_pool()
