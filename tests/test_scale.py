"""Unit tests for :mod:`repro.scale` — MinHash/LSH, the sharded blocker,
transitive clustering, cluster quality, and the streamed synthetic corpus —
plus the streaming-substrate edge cases they lean on (ragged CSV rows,
overlap stop-word boundaries)."""

import numpy as np
import pytest

from repro.blocking import OverlapBlocker
from repro.data import (Entity, iter_entity_table, load_csv,
                        load_entity_table, save_entity_table)
from repro.pipeline import MatchDecision
from repro.scale import (MinHasher, ShardedBlocker, TransitiveClusterer,
                         UnionFind, cluster_quality, generate_scale_corpus,
                         jaccard, token_hash, true_assignments,
                         true_cluster_of)
from repro.scale.cluster import canonical_clusters


def _entity(entity_id, name, city="portland", phone=None):
    return Entity(entity_id, {"name": name, "city": city, "phone": phone})


LEFT = [
    _entity("a0", "blue bottle coffee roasters", phone="555 1212"),
    _entity("a1", "stumptown coffee roasters downtown"),
    _entity("a2", "powell books flagship store"),
    _entity("a3", "voodoo doughnut original shop"),
]
RIGHT = [
    _entity("b0", "blue bottle cofee roasters", phone="555 1212"),
    _entity("b1", "stumptown coffee roaster downtown"),
    _entity("b2", "powell books flagship"),
    _entity("b3", "departure rooftop restaurant"),
]


def _id_pairs(pairs):
    return [(p.left.entity_id, p.right.entity_id) for p in pairs]


# --------------------------------------------------------------------------- #
# MinHash / LSH
# --------------------------------------------------------------------------- #

class TestMinHasher:
    def test_cross_instance_determinism(self):
        sets = [{"alpha", "beta"}, {"gamma"}, set()]
        a = MinHasher(bands=8, rows=4, seed=3).signatures(sets)
        b = MinHasher(bands=8, rows=4, seed=3).signatures(sets)
        np.testing.assert_array_equal(a, b)

    def test_chunk_invariance(self):
        sets = [{"alpha", "beta"}, {"gamma", "delta"}, {"epsilon"}]
        hasher = MinHasher(bands=8, rows=4, seed=0)
        whole = hasher.signatures(sets)
        parts = np.vstack([hasher.signatures(sets[:1]),
                           hasher.signatures(sets[1:])])
        np.testing.assert_array_equal(whole, parts)

    def test_seed_changes_signatures(self):
        sets = [{"alpha", "beta", "gamma"}]
        a = MinHasher(bands=8, rows=4, seed=0).signatures(sets)
        b = MinHasher(bands=8, rows=4, seed=1).signatures(sets)
        assert not np.array_equal(a, b)

    def test_identical_sets_collide_in_every_band(self):
        hasher = MinHasher(bands=8, rows=4, seed=0)
        keys = hasher.band_keys(hasher.signatures(
            [{"alpha", "beta"}, {"alpha", "beta"}]))
        np.testing.assert_array_equal(keys[0], keys[1])

    def test_signature_agreement_estimates_jaccard(self):
        rng = np.random.default_rng(0)
        universe = [f"tok{i}" for i in range(200)]
        errors = []
        hasher = MinHasher(bands=32, rows=4, seed=0)
        for __ in range(20):
            a = set(rng.choice(universe, size=40, replace=False))
            b = set(rng.choice(universe, size=40, replace=False))
            sig = hasher.signatures([a, b])
            estimate = float((sig[0] == sig[1]).mean())
            errors.append(abs(estimate - jaccard(a, b)))
        assert np.mean(errors) < 0.05

    def test_threshold_matches_banding_formula(self):
        hasher = MinHasher(bands=32, rows=4, seed=0)
        assert hasher.threshold == pytest.approx((1 / 32) ** 0.25)

    def test_token_hash_is_stable_and_in_range(self):
        assert token_hash("alpha") == token_hash("alpha")
        assert token_hash("alpha") != token_hash("beta")
        assert 0 <= token_hash("alpha") < (1 << 61) - 1


# --------------------------------------------------------------------------- #
# ShardedBlocker
# --------------------------------------------------------------------------- #

class TestShardedOverlapMode:
    def test_matches_in_memory_overlap_blocker(self, tmp_path):
        reference = OverlapBlocker(min_overlap=2, stop_fraction=1.0)
        sharded = ShardedBlocker(mode="overlap", min_overlap=2,
                                 stop_fraction=1.0, shard_size=2,
                                 chunk_size=3, spill_dir=tmp_path / "s")
        expected = set(_id_pairs(reference.candidates(LEFT, RIGHT)))
        got = set(_id_pairs(sharded.candidates(LEFT, RIGHT)))
        assert got == expected and expected

    def test_order_invariant_across_layouts(self, tmp_path):
        orders = []
        for i, (shard, chunk) in enumerate([(1, 1), (2, 3), (100, 100)]):
            blocker = ShardedBlocker(mode="overlap", min_overlap=2,
                                     stop_fraction=1.0, shard_size=shard,
                                     chunk_size=chunk,
                                     spill_dir=tmp_path / f"s{i}")
            orders.append(_id_pairs(blocker.candidates(LEFT, RIGHT)))
        assert orders[0] == orders[1] == orders[2]

    def test_entities_reconstructed_exactly(self, tmp_path):
        blocker = ShardedBlocker(mode="overlap", min_overlap=2,
                                 stop_fraction=1.0, shard_size=2,
                                 spill_dir=tmp_path / "s")
        by_id = {e.entity_id: e for e in LEFT}
        for pair in blocker.candidates(LEFT, RIGHT):
            assert pair.left == by_id[pair.left.entity_id]
        # None attributes survive the spill round-trip as None, not "".
        nulls = [p.left.attributes["phone"]
                 for p in blocker.candidates(LEFT, RIGHT)
                 if p.left.entity_id != "a0"]
        assert nulls and all(v is None for v in nulls)


class TestShardedMinhashMode:
    def test_near_duplicates_are_candidates(self, tmp_path):
        blocker = ShardedBlocker(mode="minhash", bands=16, rows=2,
                                 shard_size=2, spill_dir=tmp_path / "s")
        got = set(_id_pairs(blocker.candidates(LEFT, RIGHT)))
        assert {("a0", "b0"), ("a1", "b1"), ("a2", "b2")} <= got

    def test_order_invariant_across_layouts(self, tmp_path):
        orders = []
        for i, (shard, chunk) in enumerate([(1, 2), (3, 1), (64, 64)]):
            blocker = ShardedBlocker(mode="minhash", bands=16, rows=2,
                                     shard_size=shard, chunk_size=chunk,
                                     spill_dir=tmp_path / f"s{i}")
            orders.append(_id_pairs(blocker.candidates(LEFT, RIGHT)))
        assert orders[0] == orders[1] == orders[2]

    def test_verify_threshold_only_prunes(self, tmp_path):
        loose = ShardedBlocker(mode="minhash", bands=16, rows=2,
                               spill_dir=tmp_path / "a")
        strict = ShardedBlocker(mode="minhash", bands=16, rows=2,
                                verify_threshold=0.5,
                                spill_dir=tmp_path / "b")
        all_pairs = set(_id_pairs(loose.candidates(LEFT, RIGHT)))
        kept = set(_id_pairs(strict.candidates(LEFT, RIGHT)))
        assert kept <= all_pairs
        assert ("a0", "b0") in kept  # one-typo near-duplicate survives

    def test_last_stats_records_bounded_shards(self, tmp_path):
        blocker = ShardedBlocker(mode="minhash", bands=16, rows=2,
                                 shard_size=2, spill_dir=tmp_path / "s")
        candidates = blocker.candidates(LEFT, RIGHT)
        stats = blocker.last_stats
        assert stats["num_shards"] == 2
        assert stats["max_shard_rows"] == 2
        assert stats["left_rows"] == len(LEFT)
        assert stats["right_rows"] == len(RIGHT)
        assert stats["candidates"] == len(candidates)
        assert stats["spilled_bytes"] > 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ShardedBlocker(mode="bogus")
        with pytest.raises(ValueError):
            ShardedBlocker(shard_size=0)
        with pytest.raises(ValueError):
            ShardedBlocker(verify_threshold=1.5)
        with pytest.raises(ValueError):
            ShardedBlocker(mode="overlap", min_overlap=0)
        with pytest.raises(ValueError):
            ShardedBlocker(mode="overlap", stop_fraction=0.0)


# --------------------------------------------------------------------------- #
# Union-find and transitive clustering
# --------------------------------------------------------------------------- #

class TestUnionFind:
    def test_union_and_find(self):
        dsu = UnionFind()
        dsu.union("a", "b")
        dsu.union("b", "c")
        assert dsu.find("a") == dsu.find("c")
        assert dsu.find("a") != dsu.find("d")
        assert len(dsu) == 4 and "d" in dsu

    def test_canonical_names_are_order_invariant(self):
        edges = [("e3", "e1"), ("e1", "e5"), ("e2", "e4")]
        first, second = UnionFind(), UnionFind()
        for a, b in edges:
            first.union(a, b)
        for a, b in reversed(edges):
            second.union(b, a)
        assert canonical_clusters(first) == canonical_clusters(second)
        assert canonical_clusters(first)["e5"] == "e1"

    def test_components_partition_items(self):
        dsu = UnionFind()
        dsu.union("a", "b")
        dsu.add("c")
        members = sorted(sorted(m) for m in dsu.components().values())
        assert members == [["a", "b"], ["c"]]


def _decision(left, right, probability):
    return MatchDecision(left, right, probability)


class TestTransitiveClusterer:
    def test_threshold_splits_edges(self):
        clusterer = TransitiveClusterer(threshold=0.5)
        clusterer.add_decisions([_decision("a", "b", 0.9),
                                 _decision("b", "c", 0.2)])
        clusters = clusterer.clusters()
        assert clusters.assignments == {"a": "a", "b": "a", "c": "c"}
        assert clusters.merged_edges == 1
        assert clusters.non_match_edges == 1

    def test_review_routing_defers_the_edge(self):
        clusterer = TransitiveClusterer()
        clusterer.add_decision(_decision("a", "b", 0.99), routing="review")
        clusters = clusterer.clusters()
        assert clusters.assignments == {"a": "a", "b": "b"}
        assert clusters.deferred_edges == 1
        assert clusters.deferred_sample == (("a", "b"),)

    def test_routing_overrides_threshold_both_ways(self):
        clusterer = TransitiveClusterer(threshold=0.5)
        clusterer.add_decisions(
            [_decision("a", "b", 0.1), _decision("c", "d", 0.9)],
            routing=["match", "non-match"])
        assignments = clusterer.clusters().assignments
        assert assignments["a"] == assignments["b"]
        assert assignments["c"] != assignments["d"]

    def test_redundant_edges_counted_not_merged_twice(self):
        clusterer = TransitiveClusterer()
        for __ in range(3):
            clusterer.add_decision(_decision("a", "b", 1.0))
        clusters = clusterer.clusters()
        assert clusters.merged_edges == 1
        assert clusters.redundant_edges == 2
        assert clusters.num_clusters == 1

    def test_registered_entities_stay_singletons(self):
        clusterer = TransitiveClusterer()
        clusterer.add_entities(["x", "y"])
        clusterer.add_decision(_decision("a", "b", 0.9))
        describe = clusterer.clusters().describe()
        assert describe["entities"] == 4
        assert describe["clusters"] == 3
        assert describe["singletons"] == 2

    def test_routing_length_mismatch_rejected(self):
        clusterer = TransitiveClusterer()
        with pytest.raises(ValueError):
            clusterer.add_decisions([_decision("a", "b", 0.9)], routing=[])

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            TransitiveClusterer(threshold=1.5)


class TestClusterQuality:
    def test_perfect_partition(self):
        truth = {"a": "1", "b": "1", "c": "2"}
        quality = cluster_quality(truth, truth)
        assert quality.precision == quality.recall == quality.f1 == 1.0
        assert quality.true_pairs == quality.common_pairs == 1

    def test_split_cluster_loses_recall_not_precision(self):
        truth = {"a": "1", "b": "1", "c": "1"}
        predicted = {"a": "x", "b": "x", "c": "y"}
        quality = cluster_quality(predicted, truth)
        assert quality.precision == 1.0
        assert quality.recall == pytest.approx(1 / 3)

    def test_disjoint_keys_rejected(self):
        with pytest.raises(ValueError):
            cluster_quality({"a": "1"}, {"b": "1"})


# --------------------------------------------------------------------------- #
# Synthetic scale corpus
# --------------------------------------------------------------------------- #

class TestScaleCorpus:
    def test_deterministic_and_streams_to_disk(self, tmp_path):
        first = generate_scale_corpus(tmp_path / "one", 300, seed=7)
        second = generate_scale_corpus(tmp_path / "two", 300, seed=7)
        assert first.describe() == {**second.describe()}
        assert (first.left_path.read_text()
                == second.left_path.read_text())
        assert first.records >= 300
        assert first.left_rows + first.right_rows == first.records

    def test_true_matches_counts_cross_side_pairs_exactly(self, tmp_path):
        corpus = generate_scale_corpus(tmp_path / "c", 300, seed=1)
        sides = {}
        for path, side in ((corpus.left_path, "a"),
                           (corpus.right_path, "b")):
            for entity in load_entity_table(path):
                cluster = true_cluster_of(entity.entity_id)
                counts = sides.setdefault(cluster, {"a": 0, "b": 0})
                counts[side] += 1
        brute = sum(c["a"] * c["b"] for c in sides.values())
        assert brute == corpus.true_matches > 0

    def test_ids_carry_truth_but_text_does_not(self, tmp_path):
        corpus = generate_scale_corpus(tmp_path / "c", 100, seed=0)
        entity = load_entity_table(corpus.left_path)[0]
        assert true_cluster_of(entity.entity_id) == "00000000"
        assert entity.entity_id not in entity.text()
        assert true_assignments(iter([entity.entity_id])) == {
            entity.entity_id: "00000000"}

    def test_malformed_id_rejected(self):
        with pytest.raises(ValueError):
            true_cluster_of("no-separator-missing".replace("-", ""))

    def test_rejects_bad_parameters(self, tmp_path):
        with pytest.raises(ValueError):
            generate_scale_corpus(tmp_path, 1)
        with pytest.raises(ValueError):
            generate_scale_corpus(tmp_path, 10, renderings=(3, 2))
        with pytest.raises(ValueError):
            generate_scale_corpus(tmp_path, 10, family_size=0)


# --------------------------------------------------------------------------- #
# Streaming substrate edge cases
# --------------------------------------------------------------------------- #

class TestRaggedRows:
    def test_load_csv_names_file_and_row(self, tmp_path):
        path = tmp_path / "pairs.csv"
        path.write_text("left_id,left_name,right_id,right_name,label\n"
                        "a,alpha,b,beta,1\n"
                        "a,alpha,b,beta\n")
        with pytest.raises(ValueError, match=r"pairs\.csv row 3"):
            load_csv(path)

    def test_iter_entity_table_names_file_and_row(self, tmp_path):
        path = tmp_path / "table.csv"
        path.write_text("id,name\nr1,alpha\nr2,beta,extra\n")
        with pytest.raises(ValueError, match=r"table\.csv row 3"):
            list(iter_entity_table(path))

    def test_streamed_chunks_concatenate_to_eager_read(self, tmp_path):
        entities = [Entity(f"e{i}", {"name": f"tok{i}", "note": None})
                    for i in range(7)]
        path = tmp_path / "t.csv"
        assert save_entity_table(entities, path) == 7
        chunks = list(iter_entity_table(path, chunk_size=3))
        assert [len(c) for c in chunks] == [3, 3, 1]
        assert [e for c in chunks for e in c] == load_entity_table(path) \
            == entities


class TestOverlapStopWordBoundary:
    def test_single_row_left_table_never_stopwords(self):
        left = [Entity("a0", {"name": "unique coffee tokens"})]
        right = [Entity("b0", {"name": "unique coffee tokens"})]
        blocker = OverlapBlocker(min_overlap=2, stop_fraction=0.2)
        # cutoff floors at one document, every token appears in exactly
        # one, and 1 > 1 is false — nothing is stop-worded.
        assert _id_pairs(blocker.candidates(left, right)) == [("a0", "b0")]

    def test_token_at_exact_cutoff_is_kept(self):
        # "shared" appears in exactly 2 of 10 left rows; with
        # stop_fraction=0.2 the cutoff is 2.0 and the strict > keeps it.
        left = [Entity(f"a{i}", {"name": f"shared row{i}" if i < 2
                                 else f"filler{i} row{i}"})
                for i in range(10)]
        right = [Entity("b0", {"name": "shared elsewhere"})]
        blocker = OverlapBlocker(min_overlap=1, stop_fraction=0.2)
        assert set(_id_pairs(blocker.candidates(left, right))) == {
            ("a0", "b0"), ("a1", "b0")}

    def test_token_just_over_cutoff_is_dropped(self):
        left = [Entity(f"a{i}", {"name": f"shared row{i}" if i < 3
                                 else f"filler{i} row{i}"})
                for i in range(10)]
        right = [Entity("b0", {"name": "shared elsewhere"})]
        blocker = OverlapBlocker(min_overlap=1, stop_fraction=0.2)
        assert blocker.candidates(left, right) == []
