"""End-to-end scale-resolution tier (``pytest -m e2e``).

One small but complete :func:`repro.scale.run_e2e_bench` run — synthetic
corpus, trained snapshot, sharded blocking, parallel scoring, transitive
clustering, and the engine/shard-layout equivalence pass — asserting the
report contract CI smoke-checks on the full benchmark artifact.
"""

import json

import pytest

from repro.scale import run_e2e_bench
from repro.scale.bench import format_e2e_report

pytestmark = pytest.mark.e2e


@pytest.fixture(scope="module")
def report_and_path(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("e2e_bench")
    output = tmp_path / "BENCH_e2e.json"
    report = run_e2e_bench(records=3000, num_workers=2, shard_size=1024,
                           chunk_size=512, window=512, output=output,
                           work_dir=tmp_path / "work", train_epochs=2,
                           equivalence_records=1500)
    return report, output


class TestE2EBenchReport:
    def test_stage_throughput_keys(self, report_and_path):
        report, __ = report_and_path
        stages = report["stages"]
        assert stages["generate"]["records_per_second"] > 0
        assert stages["block"]["records_per_second"] > 0
        assert stages["block"]["pairs_per_second"] > 0
        assert stages["score"]["pairs_per_second"] > 0
        assert stages["cluster"]["records_per_second"] > 0
        assert report["end_to_end"]["records_per_second"] > 0

    def test_blocking_is_bounded_and_recalls(self, report_and_path):
        report, __ = report_and_path
        assert report["blocking"]["recall"] >= 0.95
        assert report["blocking"]["candidate_fraction"] < 0.01
        block = report["stages"]["block"]
        assert block["num_shards"] >= 2
        assert 0 < block["max_shard_rows"] <= 1024
        assert block["spilled_bytes"] > 0

    def test_cluster_sanity(self, report_and_path):
        report, __ = report_and_path
        clusters = report["clusters"]
        assert 0 < clusters["clusters"] <= clusters["entities"]
        assert clusters["entities"] == report["corpus"]["records"]
        quality = report["quality"]
        assert 0.0 <= quality["f1"] <= 1.0
        assert quality["precision"] > 0.9  # trained matcher, easy corpus

    def test_equivalence_covers_engines_and_layouts(self, report_and_path):
        report, __ = report_and_path
        equivalence = report["equivalence"]
        assert equivalence["bit_identical"] is True
        assert set(equivalence["engines"]) == {
            "sequential", "parallel", "daemon", "sequential-resharded"}
        assert len(equivalence["shard_layouts"]) == 2

    def test_report_persisted_and_formats(self, report_and_path):
        report, output = report_and_path
        on_disk = json.loads(output.read_text())
        assert on_disk["records"] == report["records"]
        assert on_disk["pipeline_digest"] == report["pipeline_digest"]
        text = format_e2e_report(report)
        assert "blocking recall" in text and "bit-identical" in text

    def test_telemetry_counters_snapshot(self, report_and_path):
        report, __ = report_and_path
        counters = report["telemetry"]["counters"]
        assert counters.get("scale.synth.records", 0) > 0
        assert counters.get("scale.block.candidates", 0) > 0
        assert counters.get("scale.cluster.entities", 0) > 0
