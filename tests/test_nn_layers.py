"""Tests for layers, the module system, optimizers, and serialization."""

import numpy as np
import pytest

from repro.nn import (Activation, Adam, BiGRU, Dropout, Embedding, GRU,
                      LayerNorm, Linear, Module, Parameter, SGD, Sequential,
                      Tensor, clip_grad_norm, load_state, masked_mean, mlp,
                      save_state)
from repro.nn.attention import (MultiHeadAttention, TransformerEncoderLayer,
                                additive_mask)

from .helpers import check_gradients


def rng():
    return np.random.default_rng(13)


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 3, rng())
        assert layer(Tensor(np.zeros((5, 4)))).shape == (5, 3)

    def test_no_bias(self):
        layer = Linear(4, 3, rng(), bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradients(self):
        layer = Linear(3, 2, rng())
        x = Tensor(rng().normal(size=(4, 3)))
        check_gradients(lambda: (layer(x) ** 2).sum(), layer.parameters())


class TestEmbedding:
    def test_lookup_values(self):
        emb = Embedding(10, 4, rng())
        out = emb(np.array([[1, 2], [3, 1]]))
        np.testing.assert_array_equal(out.data[0, 0], emb.weight.data[1])
        assert out.shape == (2, 2, 4)

    def test_padding_row_is_zero_and_stays_zero(self):
        emb = Embedding(10, 4, rng(), padding_idx=0)
        np.testing.assert_array_equal(emb.weight.data[0], np.zeros(4))
        out = emb(np.array([[0, 1]]))
        (out ** 2).sum().backward()
        np.testing.assert_array_equal(emb.weight.grad[0], np.zeros(4))

    def test_gradient_accumulates_for_repeated_tokens(self):
        emb = Embedding(5, 2, rng())
        out = emb(np.array([[1, 1, 1]]))
        out.sum().backward()
        np.testing.assert_allclose(emb.weight.grad[1], [3.0, 3.0])

    def test_out_of_range_raises(self):
        emb = Embedding(5, 2, rng())
        with pytest.raises(IndexError):
            emb(np.array([[7]]))
        with pytest.raises(IndexError):
            emb(np.array([[-1]]))

    def test_finite_difference_gradient(self):
        emb = Embedding(6, 3, rng())
        idx = np.array([[0, 2, 2], [1, 4, 5]])
        check_gradients(lambda: (emb(idx) ** 2).sum(), [emb.weight])


class TestLayerNorm:
    def test_normalizes_last_dim(self):
        norm = LayerNorm(8)
        x = Tensor(rng().normal(loc=5.0, scale=3.0, size=(4, 8)))
        out = norm(x).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-8)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-3)

    def test_gradients(self):
        norm = LayerNorm(5)
        x = Tensor(rng().normal(size=(3, 5)), requires_grad=True)
        check_gradients(lambda: (norm(x) ** 2).sum(),
                        [x, norm.gamma, norm.beta])


class TestDropoutLayer:
    def test_respects_eval_mode(self):
        layer = Dropout(0.9, rng())
        layer.eval()
        x = Tensor(np.ones((50,)))
        np.testing.assert_array_equal(layer(x).data, x.data)

    def test_zeroes_in_train_mode(self):
        layer = Dropout(0.5, rng())
        out = layer(Tensor(np.ones((1000,))))
        assert (out.data == 0).sum() > 300


class TestSequentialAndMLP:
    def test_sequential_applies_in_order(self):
        double = Linear(1, 1, rng(), bias=False)
        double.weight.data[...] = 2.0
        seq = Sequential(double, Activation("relu"))
        assert seq(Tensor([[3.0]])).item() == pytest.approx(6.0)

    def test_mlp_structure(self):
        net = mlp([4, 8, 2], rng())
        assert net(Tensor(np.zeros((3, 4)))).shape == (3, 2)

    def test_mlp_final_activation(self):
        net = mlp([4, 2], rng(), final_activation="sigmoid")
        out = net(Tensor(rng().normal(size=(5, 4)))).data
        assert np.all((out > 0) & (out < 1))

    def test_mlp_rejects_single_size(self):
        with pytest.raises(ValueError):
            mlp([4], rng())

    def test_unknown_activation_raises(self):
        with pytest.raises(ValueError):
            Activation("swishish")

    def test_mlp_gradients(self):
        net = mlp([3, 4, 2], rng(), activation="leaky_relu")
        x = Tensor(rng().normal(size=(2, 3)))
        check_gradients(lambda: (net(x) ** 2).sum(), net.parameters())


class TestModuleSystem:
    def _model(self):
        class Model(Module):
            def __init__(self):
                super().__init__()
                self.encoder = Linear(3, 4, rng())
                self.heads = [Linear(4, 2, rng()), Linear(4, 2, rng())]

            def forward(self, x):
                return self.heads[0](self.encoder(x))

        return Model()

    def test_discovers_nested_and_listed_parameters(self):
        model = self._model()
        names = [name for name, __ in model.named_parameters()]
        assert "encoder.weight" in names
        assert "heads.0.weight" in names
        assert "heads.1.bias" in names
        assert len(model.parameters()) == 6

    def test_train_eval_propagates(self):
        model = self._model()
        model.eval()
        assert not model.encoder.training
        assert not model.heads[1].training
        model.train()
        assert model.heads[0].training

    def test_state_dict_roundtrip(self):
        a, b = self._model(), self._model()
        b.load_state_dict(a.state_dict())
        for (na, pa), (nb, pb) in zip(a.named_parameters(),
                                      b.named_parameters()):
            assert na == nb
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_load_rejects_mismatched_keys(self):
        model = self._model()
        state = model.state_dict()
        state.pop("encoder.weight")
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_rejects_wrong_shape(self):
        model = self._model()
        state = model.state_dict()
        state["encoder.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_zero_grad_clears_all(self):
        model = self._model()
        out = model(Tensor(np.ones((1, 3))))
        out.sum().backward()
        assert model.encoder.weight.grad is not None
        model.zero_grad()
        assert model.encoder.weight.grad is None

    def test_num_parameters(self):
        model = self._model()
        assert model.num_parameters() == 3 * 4 + 4 + 2 * (4 * 2 + 2)

    def test_serialization_roundtrip(self, tmp_path):
        a, b = self._model(), self._model()
        path = tmp_path / "model.npz"
        save_state(a, path)
        load_state(b, path)
        np.testing.assert_array_equal(a.encoder.weight.data,
                                      b.encoder.weight.data)


class TestOptimizers:
    def test_sgd_step(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.array([0.5])
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95])

    def test_sgd_momentum_accelerates(self):
        p = Parameter(np.array([0.0]))
        opt = SGD([p], lr=0.1, momentum=0.9)
        p.grad = np.array([1.0])
        opt.step()
        first = -p.data[0]
        p.grad = np.array([1.0])
        opt.step()
        second = -p.data[0] - first
        assert second > first

    def test_adam_converges_on_quadratic(self):
        p = Parameter(np.array([5.0]))
        opt = Adam([p], lr=0.1)
        for __ in range(300):
            opt.zero_grad()
            loss = (p * p).sum()
            loss.backward()
            opt.step()
        assert abs(p.data[0]) < 1e-2

    def test_adam_weight_decay_shrinks_weights(self):
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.0001, weight_decay=0.5)
        p.grad = np.array([0.0])
        opt.step()
        assert p.data[0] < 1.0

    def test_skips_params_without_grad(self):
        p = Parameter(np.array([1.0]))
        Adam([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_rejects_nonpositive_lr(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.0)

    def test_clip_grad_norm(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 3.0)
        pre = clip_grad_norm([p], max_norm=1.0)
        assert pre == pytest.approx(6.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_clip_noop_when_under_limit(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.1, 0.1])
        clip_grad_norm([p], max_norm=10.0)
        np.testing.assert_allclose(p.grad, [0.1, 0.1])


class TestRNN:
    def test_gru_output_shape(self):
        net = GRU(4, 6, rng())
        out = net(Tensor(rng().normal(size=(2, 5, 4))))
        assert out.shape == (2, 5, 6)

    def test_mask_freezes_hidden_state(self):
        net = GRU(3, 4, rng())
        x = rng().normal(size=(1, 4, 3))
        mask = np.array([[1, 1, 0, 0]])
        out = net(Tensor(x), mask=mask).data
        np.testing.assert_allclose(out[0, 1], out[0, 2])
        np.testing.assert_allclose(out[0, 1], out[0, 3])

    def test_padding_does_not_change_summary(self):
        net = GRU(3, 4, rng())
        x = rng().normal(size=(1, 2, 3))
        padded = np.concatenate([x, np.zeros((1, 2, 3))], axis=1)
        short = net(Tensor(x), mask=np.ones((1, 2))).data[:, -1]
        long = net(Tensor(padded), mask=np.array([[1, 1, 0, 0]])).data[:, -1]
        np.testing.assert_allclose(short, long)

    def test_bigru_concatenates_directions(self):
        net = BiGRU(3, 4, rng())
        out = net(Tensor(rng().normal(size=(2, 5, 3))))
        assert out.shape == (2, 5, 8)
        assert net.output_dim == 8

    def test_gru_gradients(self):
        net = GRU(2, 3, rng())
        x = Tensor(rng().normal(size=(2, 3, 2)))
        check_gradients(lambda: (net(x) ** 2).sum(), net.parameters(),
                        atol=1e-4)

    def test_masked_mean(self):
        states = Tensor(np.arange(12, dtype=float).reshape(1, 4, 3))
        mask = np.array([[1, 1, 0, 0]])
        out = masked_mean(states, mask).data
        np.testing.assert_allclose(out, [[1.5, 2.5, 3.5]])


class TestAttention:
    def test_output_shape(self):
        attn = MultiHeadAttention(8, 2, rng())
        x = Tensor(rng().normal(size=(2, 5, 8)))
        assert attn(x, x, x).shape == (2, 5, 8)

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(7, 2, rng())

    def test_mask_blocks_padded_positions(self):
        attn = MultiHeadAttention(8, 2, rng())
        x = rng().normal(size=(1, 4, 8))
        mask_full = additive_mask(np.array([[1, 1, 1, 1]]))
        mask_cut = additive_mask(np.array([[1, 1, 0, 0]]))
        base = attn(Tensor(x), Tensor(x), Tensor(x), bias=mask_cut).data
        # Changing a masked position must not change unmasked outputs.
        x2 = x.copy()
        x2[0, 3] += 10.0
        keys = Tensor(x2)
        perturbed = attn(Tensor(x), keys, keys, bias=mask_cut).data
        np.testing.assert_allclose(base[0, :2], perturbed[0, :2], atol=1e-10)
        changed = attn(Tensor(x), keys, keys, bias=mask_full).data
        assert not np.allclose(base[0, :2], changed[0, :2])

    def test_causal_mask_is_lower_triangular(self):
        bias = additive_mask(np.ones((1, 3)), causal=True)
        assert bias[0, 0, 0, 1] < -1e8
        assert bias[0, 0, 2, 1] == 0.0

    def test_encoder_layer_shape_and_gradients(self):
        layer = TransformerEncoderLayer(8, 2, 16, rng())
        x = Tensor(rng().normal(size=(2, 3, 8)))
        assert layer(x).shape == (2, 3, 8)
        params = layer.parameters()[:2]
        check_gradients(lambda: (layer(x) ** 2).sum(), params, atol=1e-4)
