"""Tests for MLM pre-training and the checkpoint cache."""

import numpy as np
import pytest

from repro.extractors import TransformerExtractor
from repro.pretrain import (MlmConfig, build_corpus, build_shared_vocabulary,
                            fresh_copy, mask_tokens, pretrain_mlm,
                            pretrained_lm)
from repro.text import Vocabulary, pad_sequences


def _tiny_corpus():
    return [["[CLS]", "alpha", "beta", "[SEP]", "alpha", "beta", "[SEP]"]
            for __ in range(40)]


class TestCorpus:
    def test_build_corpus_covers_domains(self):
        corpus = build_corpus(scale=0.01, seed=0,
                              names=["fodors_zagats", "books2"])
        assert len(corpus) >= 80
        assert all(tokens[0] == "[CLS]" for tokens in corpus[:10])

    def test_shared_vocabulary(self):
        vocab = build_shared_vocabulary(_tiny_corpus())
        assert "alpha" in vocab
        assert "beta" in vocab


class TestMasking:
    def test_masks_expected_fraction(self):
        vocab = build_shared_vocabulary(_tiny_corpus())
        rng = np.random.default_rng(0)
        ids, mask = pad_sequences(
            [vocab.encode_tokens(t) for t in _tiny_corpus()], 8, vocab.pad_id)
        __, loss_mask = mask_tokens(ids, mask, vocab, rng, mask_rate=0.5)
        fraction = loss_mask.sum() / (ids >= vocab.num_special).sum()
        assert 0.3 < fraction < 0.7

    def test_never_masks_special_tokens(self):
        vocab = build_shared_vocabulary(_tiny_corpus())
        rng = np.random.default_rng(1)
        ids, mask = pad_sequences(
            [vocab.encode_tokens(t) for t in _tiny_corpus()], 8, vocab.pad_id)
        __, loss_mask = mask_tokens(ids, mask, vocab, rng, mask_rate=1.0)
        specials = ids < vocab.num_special
        assert (loss_mask[specials] == 0).all()

    def test_original_ids_untouched(self):
        vocab = build_shared_vocabulary(_tiny_corpus())
        rng = np.random.default_rng(2)
        ids, mask = pad_sequences(
            [vocab.encode_tokens(t) for t in _tiny_corpus()], 8, vocab.pad_id)
        snapshot = ids.copy()
        mask_tokens(ids, mask, vocab, rng)
        np.testing.assert_array_equal(ids, snapshot)


class TestPretraining:
    def test_loss_decreases(self):
        corpus = _tiny_corpus()
        vocab = build_shared_vocabulary(corpus)
        extractor = TransformerExtractor(vocab, np.random.default_rng(0),
                                         dim=16, num_layers=1, num_heads=2,
                                         max_len=8)
        losses = pretrain_mlm(extractor, corpus,
                              MlmConfig(steps=40, batch_size=8, seed=0))
        assert np.mean(losses[-5:]) < np.mean(losses[:5])

    def test_empty_corpus_rejected(self):
        vocab = Vocabulary.build(["x"])
        extractor = TransformerExtractor(vocab, np.random.default_rng(0),
                                         dim=16, num_layers=1, num_heads=2,
                                         max_len=8)
        with pytest.raises(ValueError):
            pretrain_mlm(extractor, [], MlmConfig(steps=1))


class TestCache:
    def test_checkpoint_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        kwargs = dict(dim=16, num_layers=1, num_heads=2, max_len=48,
                      corpus_scale=0.01, steps=5, seed=0)
        first, vocab_a = pretrained_lm(**kwargs)
        second, vocab_b = pretrained_lm(**kwargs)  # from cache
        assert len(vocab_a) == len(vocab_b)
        for (na, pa), (nb, pb) in zip(first.named_parameters(),
                                      second.named_parameters()):
            np.testing.assert_allclose(pa.data, pb.data)

    def test_distinct_configs_distinct_checkpoints(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        pretrained_lm(dim=16, num_layers=1, num_heads=2, max_len=48,
                      corpus_scale=0.01, steps=5, seed=0)
        pretrained_lm(dim=16, num_layers=1, num_heads=2, max_len=48,
                      corpus_scale=0.01, steps=6, seed=0)
        assert len(list(tmp_path.glob("*.npz"))) == 2

    def test_fresh_copy_is_independent(self, tiny_lm):
        base, __ = tiny_lm
        copy = fresh_copy(base, seed=1)
        copy.token_embedding.weight.data += 1.0
        assert not np.allclose(copy.token_embedding.weight.data,
                               base.token_embedding.weight.data)

    def test_fresh_copy_same_outputs(self, tiny_lm):
        base, __ = tiny_lm
        copy = fresh_copy(base, seed=1)
        ids = np.array([[base.vocab.cls_id, base.vocab.sep_id, 20, 21]])
        mask = np.ones((1, 4))
        np.testing.assert_allclose(base.encode(ids, mask).data,
                                   copy.encode(ids, mask).data)


class TestOverlapIndicators:
    def test_marks_shared_tokens_only(self, tiny_lm):
        base, __ = tiny_lm
        vocab = base.vocab
        a, b, c = 30, 31, 32  # arbitrary non-special ids
        ids = np.array([[vocab.cls_id, a, b, vocab.sep_id, a, c,
                         vocab.sep_id, vocab.pad_id]])
        indicators = base.overlap_indicators(ids)
        np.testing.assert_array_equal(indicators,
                                      [[0, 1, 0, 0, 1, 0, 0, 0]])

    def test_no_sep_means_no_overlap(self, tiny_lm):
        base, __ = tiny_lm
        ids = np.array([[30, 31, 30]])
        assert base.overlap_indicators(ids).sum() == 0

    def test_specials_never_marked(self, tiny_lm):
        base, __ = tiny_lm
        vocab = base.vocab
        ids = np.array([[vocab.cls_id, vocab.cls_id, vocab.sep_id,
                         vocab.cls_id, vocab.sep_id]])
        assert base.overlap_indicators(ids).sum() == 0
