"""Hypothesis property tests for the autograd engine.

These pin down algebraic invariants the rest of the library silently relies
on: linearity of the backward pass, agreement with numpy forward semantics,
and shape laws of the combinators.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor, concatenate, stack
from repro.nn import functional as F

SMALL_FLOATS = st.floats(-3.0, 3.0, allow_nan=False, allow_subnormal=False)


def arrays(max_side=4):
    shapes = st.tuples(st.integers(1, max_side), st.integers(1, max_side))
    return hnp.arrays(np.float64, shapes, elements=SMALL_FLOATS)


class TestForwardAgreesWithNumpy:
    @given(arrays(), arrays())
    @settings(max_examples=30, deadline=None)
    def test_add(self, a, b):
        if a.shape != b.shape:
            return
        np.testing.assert_allclose((Tensor(a) + Tensor(b)).data, a + b)

    @given(arrays())
    @settings(max_examples=30, deadline=None)
    def test_tanh_bounds(self, a):
        out = Tensor(a).tanh().data
        assert (np.abs(out) <= 1.0).all()

    @given(arrays())
    @settings(max_examples=30, deadline=None)
    def test_sigmoid_bounds(self, a):
        out = Tensor(a).sigmoid().data
        assert ((out >= 0) & (out <= 1)).all()

    @given(arrays())
    @settings(max_examples=30, deadline=None)
    def test_relu_idempotent(self, a):
        once = Tensor(a).relu()
        twice = once.relu()
        np.testing.assert_array_equal(once.data, twice.data)

    @given(arrays())
    @settings(max_examples=30, deadline=None)
    def test_transpose_involution(self, a):
        t = Tensor(a)
        np.testing.assert_array_equal(t.transpose().transpose().data, a)


class TestBackwardLaws:
    @given(arrays())
    @settings(max_examples=30, deadline=None)
    def test_gradient_of_sum_is_ones(self, a):
        t = Tensor(a, requires_grad=True)
        t.sum().backward()
        np.testing.assert_array_equal(t.grad, np.ones_like(a))

    @given(arrays(), st.floats(0.1, 5.0))
    @settings(max_examples=30, deadline=None)
    def test_backward_scales_linearly(self, a, scale):
        t1 = Tensor(a, requires_grad=True)
        (t1 * t1).sum().backward()
        t2 = Tensor(a, requires_grad=True)
        ((t2 * t2).sum() * scale).backward()
        np.testing.assert_allclose(t2.grad, t1.grad * scale, rtol=1e-9)

    @given(arrays())
    @settings(max_examples=30, deadline=None)
    def test_gradient_additive_over_terms(self, a):
        # d(f+g) = df + dg
        t = Tensor(a, requires_grad=True)
        (t.sum() + (t * 2).sum()).backward()
        np.testing.assert_allclose(t.grad, np.full_like(a, 3.0))

    @given(arrays())
    @settings(max_examples=20, deadline=None)
    def test_detached_branch_gets_no_gradient(self, a):
        t = Tensor(a, requires_grad=True)
        (t.detach() * 5).sum()  # no backward possible, but also no tape
        loss = t.sum()
        loss.backward()
        np.testing.assert_array_equal(t.grad, np.ones_like(a))


class TestCombinatorLaws:
    @given(st.lists(arrays(3), min_size=2, max_size=4))
    @settings(max_examples=20, deadline=None)
    def test_concatenate_then_split_roundtrip(self, parts):
        shape = parts[0].shape
        parts = [p for p in parts if p.shape == shape]
        if len(parts) < 2:
            return
        combined = concatenate([Tensor(p) for p in parts], axis=0)
        assert combined.shape[0] == sum(p.shape[0] for p in parts)
        offset = 0
        for p in parts:
            np.testing.assert_array_equal(
                combined.data[offset:offset + p.shape[0]], p)
            offset += p.shape[0]

    @given(st.lists(arrays(3), min_size=2, max_size=4))
    @settings(max_examples=20, deadline=None)
    def test_stack_adds_axis(self, parts):
        shape = parts[0].shape
        parts = [p for p in parts if p.shape == shape]
        if len(parts) < 2:
            return
        out = stack([Tensor(p) for p in parts], axis=0)
        assert out.shape == (len(parts),) + shape


class TestLossLaws:
    @given(hnp.arrays(np.float64, st.tuples(st.integers(2, 6),
                                            st.integers(2, 4)),
                      elements=SMALL_FLOATS))
    @settings(max_examples=30, deadline=None)
    def test_cross_entropy_nonnegative(self, logits):
        labels = np.zeros(logits.shape[0], dtype=np.int64)
        loss = F.cross_entropy(Tensor(logits), labels)
        assert loss.item() >= 0

    @given(hnp.arrays(np.float64, st.tuples(st.integers(2, 6),
                                            st.integers(2, 4)),
                      elements=SMALL_FLOATS))
    @settings(max_examples=30, deadline=None)
    def test_softmax_gradient_rows_sum_zero(self, logits):
        # Softmax outputs are shift-invariant, so the gradient of any
        # function of them must be orthogonal to constant shifts.
        t = Tensor(logits, requires_grad=True)
        (F.softmax(t) ** 2).sum().backward()
        np.testing.assert_allclose(t.grad.sum(axis=-1),
                                   np.zeros(logits.shape[0]), atol=1e-10)
