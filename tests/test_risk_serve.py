"""Risk routing through the serving stack, and the serving satellites.

The load-bearing invariant: turning risk routing ON must not move a
single decision bit — in the sequential engine, in the parallel engine,
and across the daemon's wire protocol.  Routing annotates; it never
decides.  Plus the two serving satellites riding this PR: the
``_retry_after`` cold-start fix and the client's transparent reconnect
with its idempotency guard.
"""

import json
import socket
import threading

import numpy as np
import pytest

from repro.data import ERDataset
from repro.pipeline import ERPipeline
from repro.risk import (AUTO_MATCH, AUTO_NON_MATCH, REVIEW, ReviewQueue,
                        RiskBand, RiskRouter, calibrate_snapshot)
from repro.serve import (DaemonClient, DaemonConfig, DaemonError,
                         ModelRegistry, ParallelScorer, SequentialScorer,
                         ServeDaemon, as_request, start_daemon_thread,
                         synthetic_candidates)


def _build_snapshot(tmp_path_factory, tiny_lm, seed, label):
    from repro.matcher import MlpMatcher
    from repro.pretrain import fresh_copy
    extractor = fresh_copy(tiny_lm[0], seed=seed)
    extractor.eval()
    matcher = MlpMatcher(extractor.feature_dim, np.random.default_rng(seed))
    matcher.eval()
    pipeline = ERPipeline(extractor, matcher)
    directory = tmp_path_factory.mktemp(f"risk_{label}") / "pipeline"
    pipeline.save(directory)
    return directory


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory, tiny_lm):
    """A calibrated snapshot: calibration.json persisted before any engine
    loads it, so every engine in this module sees the same digest."""
    directory = _build_snapshot(tmp_path_factory, tiny_lm, seed=11,
                                label="serve")
    pairs = synthetic_candidates(32, seed=13)
    valid = ERDataset("valid", "bench", [
        p.with_label(int(p.left.attributes == p.right.attributes))
        for p in pairs])
    calibrate_snapshot(directory, valid)
    return directory


@pytest.fixture(scope="module")
def workload():
    return synthetic_candidates(24, seed=17)


def _router(tmp_path, name="q"):
    # A band this wide guarantees some review traffic from a tiny matcher.
    return RiskRouter(band=RiskBand(0.05, 0.95),
                      queue=ReviewQueue(tmp_path / name))


class TestEngineBitIdentity:
    def test_sequential_routing_is_bit_identical(self, snapshot, workload,
                                                 tmp_path):
        pipeline = ERPipeline.load(snapshot)
        plain = SequentialScorer(pipeline).score_pairs(workload)
        router = _router(tmp_path)
        routed_engine = SequentialScorer.from_directory(snapshot,
                                                        router=router)
        routed = routed_engine.score_pairs(workload)
        assert routed == plain  # same bits, routing on or off
        response = routed_engine.score_request(as_request(workload))
        assert response.routing is not None
        assert len(response.routing) == len(workload)
        assert router.stats()["counts"]  # something actually routed

    def test_parallel_routing_is_bit_identical(self, snapshot, workload,
                                               tmp_path):
        plain = SequentialScorer(ERPipeline.load(snapshot)
                                 ).score_pairs(workload)
        with ParallelScorer(snapshot, num_workers=2,
                            router=_router(tmp_path)) as scorer:
            routed = scorer.score_pairs(workload)
        assert routed == plain

    def test_engines_agree_on_review_rate(self, snapshot, workload,
                                          tmp_path):
        # Both engines load the same calibration.json, so the same pairs
        # must land in the band regardless of execution strategy.
        sequential = _router(tmp_path, "seq")
        SequentialScorer.from_directory(
            snapshot, router=sequential).score_pairs(workload)
        parallel = _router(tmp_path, "par")
        with ParallelScorer(snapshot, num_workers=2,
                            router=parallel) as scorer:
            scorer.score_pairs(workload)
        assert sequential.stats()["counts"] == parallel.stats()["counts"]


class TestDaemonRouting:
    def test_wire_carries_routing_and_stays_bit_identical(
            self, snapshot, workload, tmp_path):
        plain = SequentialScorer(ERPipeline.load(snapshot)
                                 ).score_pairs(workload)
        router = _router(tmp_path)
        registry = ModelRegistry(router=router)
        registry.publish("default", snapshot)
        with start_daemon_thread(registry, DaemonConfig()) as handle:
            with DaemonClient(*handle.address) as client:
                reply = client.score(workload)
                stats = client.stats()
                client.shutdown()
        assert reply.decisions == plain  # the wire moved zero bits
        assert reply.routing is not None
        assert len(reply.routing) == len(workload)
        for annotation in reply.routing:
            assert annotation["decision"] in (AUTO_MATCH, AUTO_NON_MATCH,
                                              REVIEW)
            assert 0.0 <= annotation["confidence"] <= 1.0
        assert stats["risk"]["band"] == [0.05, 0.95]
        assert stats["risk"]["counts"] == router.stats()["counts"]
        reviews = sum(1 for a in reply.routing
                      if a["decision"] == REVIEW)
        assert router.queue.stats()["pending"] == reviews

    def test_routing_off_reply_has_no_annotations(self, snapshot, workload):
        registry = ModelRegistry()
        registry.publish("default", snapshot)
        with start_daemon_thread(registry, DaemonConfig()) as handle:
            with DaemonClient(*handle.address) as client:
                reply = client.score(workload[:4])
                stats = client.stats()
                client.shutdown()
        assert reply.routing is None
        assert stats["risk"] is None


class TestRetryAfterColdStart:
    def _daemon(self):
        return ServeDaemon(ModelRegistry(),
                           DaemonConfig(min_retry_after=0.01,
                                        max_retry_after=5.0,
                                        max_batch_pairs=100))

    def test_cold_hint_is_monotone_in_backlog(self):
        # Regression: before the fix, a daemon with no completed flush
        # handed every rejected client the flat floor, inviting them all
        # back at once regardless of backlog depth.
        daemon = self._daemon()
        hints = []
        for backlog in (0, 100, 1000, 4000):
            daemon._queued_pairs = backlog
            hints.append(daemon._retry_after())
        assert hints == sorted(hints)
        assert hints[-1] > hints[0]  # deep backlog waits strictly longer
        assert all(0.01 <= h <= 5.0 for h in hints)

    def test_warm_hint_uses_measured_rate(self):
        daemon = self._daemon()
        daemon._queued_pairs = 500
        daemon._pairs_per_second = 1000.0
        assert daemon._retry_after() == pytest.approx(0.5)

    def test_hint_respects_ceiling(self):
        daemon = self._daemon()
        daemon._queued_pairs = 10_000
        daemon._pairs_per_second = 0.5
        assert daemon._retry_after() == 5.0


class _FlakyServer:
    """A stub daemon whose first reply dies mid-line.

    Connection 1 answers the first request with HALF a reply and closes —
    the wire death a real daemon crash or reset produces.  Subsequent
    connections answer properly, echoing each request's id.
    """

    def __init__(self, truncate_first=True, truncate_always=False,
                 answer_id=None):
        self.truncate_first = truncate_first
        self.truncate_always = truncate_always
        self.answer_id = answer_id  # force a wrong id (stale-reply test)
        self.connections = 0
        self.requests_seen = []
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(4)
        self.address = self._listener.getsockname()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while True:
            try:
                conn, __ = self._listener.accept()
            except OSError:
                return
            self.connections += 1
            first_of_connection = self.connections == 1
            with conn:
                reader = conn.makefile("rb")
                for line in reader:
                    message = json.loads(line)
                    self.requests_seen.append(message)
                    reply = {"ok": True, "op": "score",
                             "id": (self.answer_id if self.answer_id
                                    is not None else message.get("id")),
                             "domain": "default", "digest": "stub",
                             "latency_seconds": 0.001,
                             "decisions": [{"left_id": "l0",
                                            "right_id": "r0",
                                            "probability": 0.9,
                                            "is_match": True}]}
                    payload = json.dumps(reply).encode() + b"\n"
                    if self.truncate_always or (self.truncate_first
                                                and first_of_connection):
                        conn.sendall(payload[:len(payload) // 2])
                        reader.close()  # release the fd so FIN is sent now
                        try:
                            conn.shutdown(socket.SHUT_RDWR)
                        except OSError:
                            pass
                        break  # died mid-reply
                    conn.sendall(payload)

    def close(self):
        self._listener.close()


class TestClientReconnect:
    def test_reconnects_through_mid_reply_death(self):
        server = _FlakyServer(truncate_first=True)
        try:
            client = DaemonClient(*server.address, timeout=10.0,
                                  max_reconnects=3)
            reply = client.call({"op": "score", "id": "req-1", "pairs": []})
            client.close()
        finally:
            server.close()
        # The truncated reply was discarded, the client reconnected once,
        # resent, and applied exactly one full reply for the right id.
        assert reply["ok"] and reply["id"] == "req-1"
        assert client.reconnects == 1
        assert server.connections == 2
        assert [m["id"] for m in server.requests_seen] == ["req-1", "req-1"]

    def test_reconnect_budget_is_bounded(self):
        # Every connection dies mid-reply: after max_reconnects attempts
        # the transport error surfaces instead of looping forever.
        server = _FlakyServer(truncate_always=True)
        try:
            client = DaemonClient(*server.address, timeout=10.0,
                                  max_reconnects=2)
            with pytest.raises(ConnectionError):
                client.call({"op": "score", "id": "req-2", "pairs": []})
            client.close()
        finally:
            server.close()
        assert client.reconnects == 2

    def test_stale_reply_rejected_not_applied(self):
        server = _FlakyServer(truncate_first=False, answer_id="ghost-id")
        try:
            client = DaemonClient(*server.address)
            with pytest.raises(DaemonError) as err:
                client.call({"op": "score", "id": "req-3", "pairs": []})
            client.close()
        finally:
            server.close()
        assert err.value.code == "stale-reply"
        assert "req-3" in str(err.value)

    def test_shutdown_is_never_resent(self):
        server = _FlakyServer(truncate_first=True)
        try:
            client = DaemonClient(*server.address, timeout=10.0,
                                  max_reconnects=3)
            with pytest.raises(ConnectionError):
                client.call({"op": "shutdown", "id": "req-4"},
                            retry_transport=False)
            client.close()
        finally:
            server.close()
        assert client.reconnects == 0
        assert len(server.requests_seen) == 1  # exactly one send, ever
