"""Tests for the online serving stack: registry, daemon, wire protocol.

The invariants under test are the serving layer's contract:

* hot swap is zero-downtime — leases pin the old generation, new requests
  route to the new one, and decisions stay bit-identical to a sequential
  engine on *whichever* snapshot answered;
* admission control rejects with an actionable retry hint instead of
  queueing unboundedly;
* cross-request micro-batching merges concurrent requests without
  changing a single decision bit.
"""

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.data import Entity, EntityPair
from repro.pipeline import ERPipeline
from repro.serve import (BackpressureError, DaemonClient, DaemonConfig,
                         DaemonError, ModelRegistry, ScoreCache,
                         ScoreRequest, SequentialScorer, UnknownDomain,
                         as_request, start_daemon_thread)


def _pairs(texts, tag=""):
    return [EntityPair(Entity(f"l{tag}{i}", {"name": text}),
                       Entity(f"r{tag}{i}", {"name": text[::-1]}))
            for i, text in enumerate(texts)]


def _build_snapshot(tmp_path_factory, tiny_lm, seed, label):
    from repro.matcher import MlpMatcher
    from repro.pretrain import fresh_copy
    extractor = fresh_copy(tiny_lm[0], seed=seed)
    extractor.eval()
    matcher = MlpMatcher(extractor.feature_dim, np.random.default_rng(seed))
    matcher.eval()
    pipeline = ERPipeline(extractor, matcher)
    directory = tmp_path_factory.mktemp(f"daemon_{label}") / "pipeline"
    pipeline.save(directory)
    return pipeline, directory


@pytest.fixture(scope="module")
def snapshot_a(tmp_path_factory, tiny_lm):
    return _build_snapshot(tmp_path_factory, tiny_lm, seed=0, label="a")


@pytest.fixture(scope="module")
def snapshot_b(tmp_path_factory, tiny_lm):
    """A second snapshot with different weights (and therefore digest)."""
    return _build_snapshot(tmp_path_factory, tiny_lm, seed=7, label="b")


class TestModelRegistry:
    def test_publish_resolve_roundtrip(self, snapshot_a):
        pipeline, directory = snapshot_a
        with ModelRegistry() as registry:
            digest = registry.publish("prod", directory)
            assert digest == pipeline.manifest_digest
            assert "prod" in registry and len(registry) == 1
            assert registry.domains() == {"prod": digest}
            with registry.resolve("prod") as lease:
                assert lease.digest == digest
                pairs = _pairs(["registry row %d" % i for i in range(6)])
                got = lease.engine.score_request(as_request(pairs))
                assert got.snapshot_digest == digest
                assert len(got.decisions) == 6

    def test_unknown_domain_is_actionable(self, snapshot_a):
        __, directory = snapshot_a
        with ModelRegistry() as registry:
            registry.publish("only", directory)
            with pytest.raises(UnknownDomain) as err:
                registry.resolve("absent")
            assert err.value.known == ["only"]

    def test_hot_swap_pins_inflight_lease_on_old_snapshot(
            self, snapshot_a, snapshot_b):
        pipeline_a, dir_a = snapshot_a
        pipeline_b, dir_b = snapshot_b
        assert pipeline_a.manifest_digest != pipeline_b.manifest_digest
        pairs = _pairs(["swap row %d" % i for i in range(8)])
        expected = {
            pipeline_a.manifest_digest:
                SequentialScorer(pipeline_a).score_pairs(pairs),
            pipeline_b.manifest_digest:
                SequentialScorer(pipeline_b).score_pairs(pairs),
        }
        with ModelRegistry() as registry:
            registry.publish("prod", dir_a)
            lease = registry.resolve("prod")  # request "in flight" ...
            registry.publish("prod", dir_b)   # ... while the swap lands
            # The lease still answers on the old snapshot, bit-identically.
            assert lease.digest == pipeline_a.manifest_digest
            old = lease.engine.score_request(as_request(pairs))
            assert old.decisions == expected[pipeline_a.manifest_digest]
            lease.release()
            # New resolutions land on the new generation.
            with registry.resolve("prod") as fresh:
                assert fresh.digest == pipeline_b.manifest_digest
                new = fresh.engine.score_request(as_request(pairs))
                assert new.decisions == expected[pipeline_b.manifest_digest]

    def test_hot_swap_under_load_is_bit_identical(
            self, snapshot_a, snapshot_b):
        """Worker threads score nonstop while the snapshot republishes:
        every single response must match the sequential reference for the
        digest its lease pinned — no torn generation, ever."""
        pipeline_a, dir_a = snapshot_a
        pipeline_b, dir_b = snapshot_b
        pairs = _pairs(["load row %d" % i for i in range(10)])
        expected = {
            pipeline_a.manifest_digest:
                SequentialScorer(pipeline_a).score_pairs(pairs),
            pipeline_b.manifest_digest:
                SequentialScorer(pipeline_b).score_pairs(pairs),
        }
        registry = ModelRegistry(cache=ScoreCache(capacity=4096))
        registry.publish("prod", dir_a)
        started = threading.Event()
        errors, seen = [], set()
        seen_lock = threading.Lock()

        def worker():
            try:
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    with registry.resolve("prod") as lease:
                        response = lease.engine.score_request(
                            as_request(pairs))
                        assert response.decisions == expected[lease.digest]
                    started.set()
                    with seen_lock:
                        seen.add(lease.digest)
                    if lease.digest == pipeline_b.manifest_digest:
                        return  # observed the swap; done
                errors.append(AssertionError("never observed the swap"))
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=worker) for __ in range(4)]
        for thread in threads:
            thread.start()
        assert started.wait(60)  # old generation served at least once
        registry.publish("prod", dir_b)
        for thread in threads:
            thread.join()
        registry.close()
        assert errors == []
        assert seen == {pipeline_a.manifest_digest,
                        pipeline_b.manifest_digest}


class TestDaemonAdmission:
    def test_backpressure_rejects_past_high_water(self, snapshot_a):
        __, directory = snapshot_a
        pairs = _pairs(["admission row %d" % i for i in range(8)], tag="q")
        config = DaemonConfig(max_queued_pairs=10, max_batch_pairs=100,
                              flush_interval=0.02)

        async def scenario():
            from repro.serve import ServeDaemon
            registry = ModelRegistry()
            registry.publish("default", directory)
            daemon = ServeDaemon(registry, config)
            first = asyncio.ensure_future(
                daemon.submit(ScoreRequest(pairs=tuple(pairs))))
            await asyncio.sleep(0)  # first request is now queued (8/10)
            with pytest.raises(BackpressureError) as err:
                await daemon.submit(ScoreRequest(pairs=tuple(pairs)))
            assert config.min_retry_after <= err.value.retry_after \
                <= config.max_retry_after
            response = await first  # the admitted request still completes
            assert len(response.decisions) == len(pairs)
            stats = daemon.snapshot_stats()
            assert stats["rejected"] == 1 and stats["responses"] == 1
            assert stats["queued_pairs"] == 0
            await daemon.aclose()

        asyncio.run(asyncio.wait_for(scenario(), timeout=120))

    def test_merges_concurrent_requests_into_one_flush(self, snapshot_a):
        pipeline, directory = snapshot_a
        all_pairs = _pairs(["merge row %d" % i for i in range(12)], tag="m")
        chunks = [all_pairs[i:i + 4] for i in range(0, 12, 4)]
        # The contract: a merged request's decisions are bit-identical to a
        # standalone sequential engine scoring that request ALONE — the
        # flush amortizes overhead, it never changes batch composition.
        expected = [SequentialScorer(pipeline).score_pairs(chunk)
                    for chunk in chunks]
        config = DaemonConfig(max_batch_pairs=256, flush_interval=0.25)

        async def scenario():
            from repro.serve import ServeDaemon
            registry = ModelRegistry()
            registry.publish("default", directory)
            daemon = ServeDaemon(registry, config)
            responses = await asyncio.gather(*[
                daemon.submit(ScoreRequest(pairs=tuple(chunk)))
                for chunk in chunks])
            got = [r.decisions for r in responses]
            stats = daemon.snapshot_stats()
            await daemon.aclose()
            return got, stats

        got, stats = asyncio.run(asyncio.wait_for(scenario(), timeout=120))
        assert got == expected  # merged scoring is bit-identical
        assert stats["flushes"] == 1  # all three requests shared one batch
        assert stats["merged_requests"] == 3
        assert stats["requests_per_flush"] == 3.0
        assert stats["merge_efficiency"] == pytest.approx(2 / 3)


class TestDaemonEndToEnd:
    """Full TCP path: N concurrent clients against an in-process daemon."""

    def test_concurrent_clients_bit_identical_with_hot_swap(
            self, snapshot_a, snapshot_b):
        pipeline_a, dir_a = snapshot_a
        pipeline_b, dir_b = snapshot_b
        num_clients = 8
        pairs = _pairs(["wire row %d" % i for i in range(6)], tag="w")
        expected = {
            pipeline_a.manifest_digest:
                SequentialScorer(pipeline_a).score_pairs(pairs),
            pipeline_b.manifest_digest:
                SequentialScorer(pipeline_b).score_pairs(pairs),
        }
        registry = ModelRegistry(cache=ScoreCache(capacity=4096))
        registry.publish("default", dir_a)
        config = DaemonConfig(flush_interval=0.02)
        errors = []
        barrier = threading.Barrier(num_clients)

        def client_worker(host, port, phase_swap):
            try:
                with DaemonClient(host, port) as client:
                    for phase in range(2):
                        barrier.wait()
                        reply = client.score(pairs)
                        assert reply.decisions == expected[reply.digest]
                        if phase == 1:
                            # after the swap barrier everyone is on B
                            assert reply.digest == \
                                pipeline_b.manifest_digest
                        if phase_swap and phase == 0:
                            client.publish("default", str(dir_b))
                        barrier.wait()
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        with start_daemon_thread(registry, config) as handle:
            host, port = handle.address
            threads = [
                threading.Thread(target=client_worker,
                                 args=(host, port, index == 0))
                for index in range(num_clients)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            with DaemonClient(host, port) as probe:
                stats = probe.stats()
        assert errors == []
        assert stats["failed"] == 0  # the swap dropped zero requests
        assert stats["responses"] == 2 * num_clients
        # Concurrent same-digest requests shared flushes.
        assert stats["flushes"] < stats["responses"]
        assert stats["merge_efficiency"] > 0.0

    def test_wire_errors_and_introspection_ops(self, snapshot_a):
        __, directory = snapshot_a
        registry = ModelRegistry()
        digest = registry.publish("default", directory)
        with start_daemon_thread(registry, DaemonConfig()) as handle:
            with DaemonClient(*handle.address) as client:
                assert client.ping()
                assert client.domains() == {"default": digest}
                with pytest.raises(DaemonError) as err:
                    client.score(_pairs(["x"]), domain="nope")
                assert err.value.code == "unknown-domain"
                assert err.value.reply["known"] == ["default"]
                bad = client.call({"op": "frobnicate"})
                assert bad["error"] == "unknown-op"
                garbage = client.call({"op": "score", "pairs": "not-a-list"})
                assert garbage["ok"] is False
                reply = client.score(_pairs(["alpha", "beta"]),
                                     request_id="my-id-42")
                assert reply.request_id == "my-id-42"
                assert reply.digest == digest
                assert reply.latency_seconds > 0.0

    def test_shutdown_drains_cleanly(self, snapshot_a):
        __, directory = snapshot_a
        registry = ModelRegistry()
        registry.publish("default", directory)
        handle = start_daemon_thread(registry, DaemonConfig())
        with DaemonClient(*handle.address) as client:
            assert len(client.score(_pairs(["final row"])).decisions) == 1
            client.shutdown()
        handle.stop()  # joins; raises if the daemon died uncleanly
