"""Tests for paper numbers and the paper-vs-measured report generator."""

import pytest

from repro.experiments import (MethodScore, PAPER_TABLES, ResultStore,
                               compare_table, paper_delta_f1, render_report,
                               render_table_report, shape_checks)
from repro.experiments.paper_numbers import (PAPER_TABLE3, PAPER_TABLE4,
                                             PAPER_TABLE5)


def _measured_row(pair, noda=50.0, mmd=60.0):
    return {"source": pair[0], "target": pair[1],
            "noda": MethodScore("noda", [noda]),
            "mmd": MethodScore("mmd", [mmd]),
            "delta_f1": mmd - noda}


class TestPaperNumbers:
    def test_table_sizes_match_paper(self):
        assert len(PAPER_TABLE3) == 6
        assert len(PAPER_TABLE4) == 6
        assert len(PAPER_TABLE5) == 12

    def test_every_row_has_seven_methods(self):
        for table in PAPER_TABLES.values():
            for row in table.values():
                assert set(row) == {"noda", "mmd", "k_order", "grl",
                                    "invgan", "invgan_kd", "ed"}

    def test_known_delta_values(self):
        # Paper Table 3: AB->WA delta = 14.2; Table 4: B2->FZ delta = 43.9.
        delta = paper_delta_f1(PAPER_TABLE3, ("abt_buy", "walmart_amazon"))
        assert delta == pytest.approx(14.2, abs=0.05)
        delta = paper_delta_f1(PAPER_TABLE4, ("books2", "fodors_zagats"))
        assert delta == pytest.approx(43.9, abs=0.05)

    def test_wdc_deltas_small(self):
        # Paper: WDC gains range -1.5 .. +8.3.
        deltas = [paper_delta_f1(PAPER_TABLE5, pair)
                  for pair in PAPER_TABLE5]
        assert min(deltas) >= -1.6
        assert max(deltas) <= 8.4


class TestCompareAndRender:
    def test_compare_table_joins_rows(self):
        pair = ("books2", "fodors_zagats")
        comparison = compare_table("table4", [_measured_row(pair)])
        assert len(comparison) == 1
        entry = comparison[0]
        assert entry["paper_noda"] == 49.6
        assert entry["measured_noda"] == 50.0
        assert entry["measured_delta"] == pytest.approx(10.0)

    def test_compare_skips_unknown_pairs(self):
        comparison = compare_table("table4",
                                   [_measured_row(("x", "y"))])
        assert comparison == []

    def test_shape_checks_reproduced(self):
        pair = ("books2", "fodors_zagats")  # paper delta +43.9
        verdicts = shape_checks("table4",
                                compare_table("table4",
                                              [_measured_row(pair)]))
        assert len(verdicts) == 1
        assert "REPRODUCED" in verdicts[0]

    def test_shape_checks_not_reproduced(self):
        pair = ("books2", "fodors_zagats")
        row = _measured_row(pair, noda=60.0, mmd=50.0)  # DA hurts
        verdicts = shape_checks("table4", compare_table("table4", [row]))
        assert "NOT reproduced" in verdicts[0]

    def test_render_table_report_markdown(self):
        pair = ("dblp_acm", "dblp_scholar")
        text = render_table_report("table3", [_measured_row(pair)])
        assert "| dblp_acm->dblp_scholar |" in text
        assert "77.8" in text  # paper NoDA for DA->DS

    def test_render_report_from_store(self, tmp_path):
        store = ResultStore(tmp_path)
        pair = ("books2", "zomato_yelp")
        store.save("table4_fast", [_measured_row(pair)])
        text = render_report(store=store, profile_name="fast")
        assert "table4" in text
        assert "books2->zomato_yelp" in text

    def test_render_report_empty_store(self, tmp_path):
        text = render_report(store=ResultStore(tmp_path))
        assert "No stored results" in text

    def test_cli_report_command(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)  # empty store in cwd
        from repro.cli import main
        assert main(["report"]) == 0
        assert "Reproduction report" in capsys.readouterr().out
