"""Tests for ASCII plotting, calibration, and threshold tuning."""

import numpy as np
import pytest

from repro.analysis import (ascii_curves, ascii_scatter,
                            expected_calibration_error, matcher_calibration)
from repro.datasets import load_dataset
from repro.train import best_threshold


class TestAsciiCurves:
    def test_renders_legend_and_axis(self):
        text = ascii_curves({"mmd": [10, 20, 30], "noda": [5, 5, 5]})
        assert "o=mmd" in text
        assert "x=noda" in text
        assert "+" in text  # axis corner

    def test_respects_y_range(self):
        text = ascii_curves({"a": [50.0]}, y_range=(0.0, 100.0))
        assert "100.0" in text
        assert "0.0" in text

    def test_single_point_curve(self):
        text = ascii_curves({"a": [42.0]})
        assert "o" in text

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ascii_curves({})
        with pytest.raises(ValueError):
            ascii_curves({"a": []})

    def test_flat_range_padded(self):
        text = ascii_curves({"a": [5.0, 5.0]})
        assert "o" in text  # no divide-by-zero


class TestAsciiScatter:
    def test_renders_points(self):
        text = ascii_scatter([(0.1, 50.0), (0.9, 20.0)],
                             x_label="mmd", y_label="f1")
        grid_area = "\n".join(text.splitlines()[:-1])  # drop caption line
        assert grid_area.count("o") == 2
        assert "mmd" in text

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ascii_scatter([])

    def test_single_point(self):
        text = ascii_scatter([(1.0, 1.0)])
        assert "o" in text


class TestCalibration:
    def test_perfectly_calibrated_low_ece(self):
        rng = np.random.default_rng(0)
        probabilities = rng.uniform(0, 1, size=20000)
        labels = (rng.uniform(0, 1, size=20000) < probabilities).astype(int)
        report = expected_calibration_error(probabilities, labels)
        assert report.ece < 0.03

    def test_overconfident_high_ece(self):
        probabilities = np.full(1000, 0.99)
        labels = np.zeros(1000, dtype=int)
        report = expected_calibration_error(probabilities, labels)
        assert report.ece > 0.9

    def test_bin_counts_sum(self):
        probabilities = np.linspace(0, 1, 57)
        labels = np.zeros(57, dtype=int)
        report = expected_calibration_error(probabilities, labels, bins=7)
        assert report.bin_counts.sum() == 57

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            expected_calibration_error([0.5], [1, 0])
        with pytest.raises(ValueError):
            expected_calibration_error([0.5], [1], bins=0)

    def test_matcher_calibration_runs(self, lm_copy, matcher_factory):
        ds = load_dataset("fz", scale=0.1, seed=0)
        report = matcher_calibration(lm_copy,
                                     matcher_factory(lm_copy.feature_dim),
                                     ds)
        assert 0.0 <= report.ece <= 1.0

    def test_matcher_calibration_needs_labels(self, lm_copy,
                                              matcher_factory):
        ds = load_dataset("fz", scale=0.1, seed=0).without_labels()
        with pytest.raises(ValueError):
            matcher_calibration(lm_copy,
                                matcher_factory(lm_copy.feature_dim), ds)


class TestBestThreshold:
    def test_finds_separating_cut(self):
        probabilities = [0.1, 0.2, 0.8, 0.9]
        labels = [0, 0, 1, 1]
        threshold, f1 = best_threshold(probabilities, labels)
        assert f1 == 1.0
        assert 0.2 < threshold <= 0.8

    def test_beats_default_when_shifted(self):
        # All probabilities compressed below 0.5: default threshold finds
        # nothing, the tuned one recovers the matches.
        probabilities = [0.05, 0.10, 0.30, 0.35]
        labels = [0, 0, 1, 1]
        from repro.train import match_metrics
        default_f1 = match_metrics(labels,
                                   [p >= 0.5 for p in probabilities]).f1
        threshold, f1 = best_threshold(probabilities, labels)
        assert default_f1 == 0.0
        assert f1 == 1.0
        assert threshold <= 0.30

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            best_threshold([0.5], [1, 0])
        with pytest.raises(ValueError):
            best_threshold([], [])
