"""Micro-scale tests of the figure experiment harness.

These verify the figure pipelines end to end (shapes, bookkeeping, data
flow); the benchmark suite runs them at meaningful scale.
"""

import numpy as np
import pytest

from repro.experiments import Profile, figure5, figure6, figure7, figure8, figure10, figure11
from repro.experiments.figures import Figure5Result

MICRO = Profile(
    name="micro", data_scale=0.08, lm_dim=32, lm_layers=1, lm_heads=2,
    max_len=96, pretrain_steps=80, pretrain_corpus_scale=0.01,
    epochs=2, batch_size=8, iterations_per_epoch=2, learning_rate=1e-3,
    beta=0.1, repeats=1)


class TestFigure5:
    def test_shapes_and_scores(self):
        result = figure5(MICRO, source_name="fodors_zagats",
                         target_name="zomato_yelp", sample=20, seed=0)
        assert isinstance(result, Figure5Result)
        assert result.embedding_noda.shape == (40, 2)
        assert result.embedding_da.shape == (40, 2)
        assert result.domain_labels.sum() == 20
        assert 0.0 <= result.mixing_noda <= 1.0
        assert 0.0 <= result.mixing_da <= 1.0


class TestFigure6:
    def test_points_structure(self):
        points = figure6(MICRO, pairs=(("fodors_zagats", "zomato_yelp"),
                                       ("books2", "zomato_yelp")))
        assert len(points) == 2
        assert all(np.isfinite(p.distance) for p in points)
        # FZ (same domain) must be nearer to ZY than B2 (books).
        assert points[0].distance < points[1].distance


class TestFigure7:
    def test_curves_per_learning_rate(self):
        results = figure7(MICRO, source_name="fodors_zagats",
                          target_name="zomato_yelp",
                          learning_rates=(1e-3, 1e-4))
        assert len(results) == 2
        for res in results:
            assert set(res.curves) == {"noda", "mmd", "invgan_kd"}
            for curve in res.curves.values():
                assert len(curve) == MICRO.epochs


class TestFigure8:
    def test_source_and_target_curves(self):
        results = figure8(MICRO, pairs=(("fodors_zagats", "zomato_yelp"),))
        assert len(results) == 1
        res = results[0]
        for method in ("invgan", "invgan_kd"):
            assert len(res.source_curves[method]) == MICRO.epochs
            assert len(res.target_curves[method]) == MICRO.epochs


class TestFigure10:
    def test_rows(self):
        rows = figure10(MICRO, pairs=(("fodors_zagats", "zomato_yelp"),))
        assert len(rows) == 1
        assert set(rows[0]) == {"pair", "reweight_f1", "dader_f1"}


class TestFigure11:
    def test_series_structure(self):
        series = figure11(MICRO, "fodors_zagats", "zomato_yelp",
                          budgets=[8, 16])
        assert series.budgets == [8, 16]
        assert set(series.f1) == {"noda", "invgan_kd", "ditto",
                                  "deepmatcher"}
        for values in series.f1.values():
            assert len(values) == 2
