"""Tests for the top-level API and the example scripts' integrity."""

import py_compile
from pathlib import Path

import pytest

from repro import adapt, load_dataset, no_da
from repro.train import TrainConfig

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

TINY_LM = dict(dim=32, num_layers=1, num_heads=2, max_len=96,
               corpus_scale=0.01, steps=80, seed=0)
TINY_CONFIG = TrainConfig(epochs=2, batch_size=8, iterations_per_epoch=3,
                          pretrain_epochs=1, seed=0)


class TestTopLevelApi:
    def test_no_da_runs(self):
        source = load_dataset("fz", scale=0.15, seed=0)
        target = load_dataset("zy", scale=0.15, seed=0)
        result = no_da(source, target, config=TINY_CONFIG, lm_kwargs=TINY_LM)
        assert result.method == "noda"
        assert 0.0 <= result.best_f1 <= 100.0

    def test_adapt_joint_aligner(self):
        source = load_dataset("fz", scale=0.15, seed=0)
        target = load_dataset("zy", scale=0.15, seed=0)
        result = adapt(source, target, aligner="mmd", config=TINY_CONFIG,
                       lm_kwargs=TINY_LM)
        assert result.method == "mmd"

    def test_adapt_gan_aligner(self):
        source = load_dataset("fz", scale=0.15, seed=0)
        target = load_dataset("zy", scale=0.15, seed=0)
        result = adapt(source, target, aligner="InvGAN+KD",
                       config=TINY_CONFIG, lm_kwargs=TINY_LM)
        assert result.method == "invgan_kd"

    def test_adapt_rejects_unlabeled_source(self):
        source = load_dataset("fz", scale=0.15, seed=0).without_labels()
        target = load_dataset("zy", scale=0.15, seed=0)
        with pytest.raises(ValueError):
            adapt(source, target, config=TINY_CONFIG, lm_kwargs=TINY_LM)

    def test_adapt_requires_labeled_target_for_protocol(self):
        source = load_dataset("fz", scale=0.15, seed=0)
        target = load_dataset("zy", scale=0.15, seed=0).without_labels()
        with pytest.raises(ValueError):
            adapt(source, target, config=TINY_CONFIG, lm_kwargs=TINY_LM)


class TestExamples:
    @pytest.mark.parametrize("script", sorted(EXAMPLES.glob("*.py")),
                             ids=lambda p: p.name)
    def test_example_compiles(self, script):
        py_compile.compile(str(script), doraise=True)

    def test_at_least_three_examples(self):
        assert len(list(EXAMPLES.glob("*.py"))) >= 3

    def test_examples_have_main_and_docstring(self):
        for script in EXAMPLES.glob("*.py"):
            text = script.read_text()
            assert '"""' in text.split("\n", 1)[0] + text, script
            assert "__main__" in text, script
