"""Risk calibration: ECE hardening regressions, Platt fit, snapshot digest.

Satellite coverage for the risk loop's measurement layer: degenerate
inputs to ``expected_calibration_error`` must be well-defined (pinned
here as regressions), the Platt fit must be deterministic and monotone,
and persisting a calibrator into a snapshot must change its manifest
digest (that is what invalidates caches and hot-swap identity).
"""

import numpy as np
import pytest

from repro.analysis.calibration import expected_calibration_error
from repro.artifacts import ArtifactStore
from repro.data import ERDataset
from repro.risk import (CALIBRATION_NAME, Calibrator, calibrate_snapshot,
                        fit_platt, load_calibrator, save_calibrator)


class TestExpectedCalibrationErrorHardening:
    def test_empty_input_is_zero(self):
        # Pinned behavior: a model that made no predictions made no
        # miscalibrated ones.
        assert expected_calibration_error([], []).ece == 0.0

    def test_single_bin_is_legal(self):
        report = expected_calibration_error([0.2, 0.8], [0, 1], bins=1)
        assert report.bin_counts.tolist() == [2]
        assert report.ece == pytest.approx(0.0)

    def test_zero_bins_rejected(self):
        with pytest.raises(ValueError, match="at least one bin"):
            expected_calibration_error([0.5], [1], bins=0)

    def test_edge_probabilities_land_in_edge_bins(self):
        report = expected_calibration_error([0.0, 1.0], [0, 1], bins=10)
        assert report.bin_counts[0] == 1
        assert report.bin_counts[-1] == 1

    def test_nan_probability_raises_with_index(self):
        with pytest.raises(ValueError, match="index 1"):
            expected_calibration_error([0.5, float("nan")], [1, 0])

    def test_inf_probability_raises(self):
        with pytest.raises(ValueError, match="finite"):
            expected_calibration_error([float("inf")], [1])

    def test_out_of_range_probability_raises(self):
        # Regression: p > 1 used to silently clip into the last bin.
        with pytest.raises(ValueError, match="index 0"):
            expected_calibration_error([1.5], [1])
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            expected_calibration_error([0.3, -0.1], [1, 0])

    def test_non_binary_label_raises(self):
        with pytest.raises(ValueError, match="labels must be 0 or 1"):
            expected_calibration_error([0.5], [2])

    def test_fractional_label_not_truncated(self):
        # Regression: the int64 cast used to turn 0.5 into a legal 0.
        with pytest.raises(ValueError, match="labels must be 0 or 1"):
            expected_calibration_error([0.5], [0.5])

    def test_nan_label_raises(self):
        with pytest.raises(ValueError, match="labels"):
            expected_calibration_error([0.5], [float("nan")])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="length"):
            expected_calibration_error([0.5, 0.6], [1])

    def test_two_dimensional_input_rejected(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            expected_calibration_error([[0.5]], [[1]])

    def test_perfect_calibration_is_zero(self):
        # In every occupied bin, confidence equals empirical accuracy.
        probabilities = [0.25] * 4 + [0.75] * 4
        labels = [1, 0, 0, 0, 1, 1, 1, 0]
        report = expected_calibration_error(probabilities, labels, bins=2)
        assert report.ece == pytest.approx(0.0)


class TestPlattFit:
    def _scores(self, n=800, seed=0):
        # Generative miscalibration: labels are drawn from a true
        # probability, but the reported score sharpens its logit 3x — the
        # overconfident shape domain shift produces.  Platt's a ~= 1/3
        # undoes it exactly.
        rng = np.random.default_rng(seed)
        true = rng.uniform(0.05, 0.95, size=n)
        labels = (rng.uniform(size=n) < true).astype(int)
        logits = np.log(true / (1.0 - true))
        probabilities = 1.0 / (1.0 + np.exp(-3.0 * logits))
        return probabilities, labels

    def test_fit_is_deterministic(self):
        probabilities, labels = self._scores()
        assert fit_platt(probabilities, labels) == \
            fit_platt(probabilities, labels)

    def test_calibration_is_monotone(self):
        # Platt is a monotone map: ordering of raw scores is preserved,
        # so the 0.5 auto-decision cut can shift but never reorder pairs.
        probabilities, labels = self._scores()
        a, b = fit_platt(probabilities, labels)
        calibrator = Calibrator(a=a, b=b)
        grid = np.linspace(0.01, 0.99, 101)
        calibrated = calibrator.calibrate(grid)
        assert np.all(np.diff(calibrated) > 0) or \
            np.all(np.diff(calibrated) < 0)
        assert a > 0  # fit against informative scores keeps orientation

    def test_fit_improves_ece_on_overconfident_scores(self):
        probabilities, labels = self._scores()
        a, b = fit_platt(probabilities, labels)
        calibrated = Calibrator(a=a, b=b).calibrate(probabilities)
        before = expected_calibration_error(probabilities, labels).ece
        after = expected_calibration_error(calibrated, labels).ece
        assert after < before

    def test_single_class_labels_stay_finite(self):
        # Platt's smoothed targets keep a separable/one-class fit bounded.
        probabilities = np.linspace(0.6, 0.9, 20)
        a, b = fit_platt(probabilities, np.ones(20, dtype=int))
        assert np.isfinite(a) and np.isfinite(b)
        q = Calibrator(a=a, b=b).calibrate(probabilities)
        assert np.all((q > 0.0) & (q < 1.0))

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            fit_platt([], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length"):
            fit_platt([0.5], [1, 0])

    def test_json_roundtrip(self):
        calibrator = Calibrator(a=1.5, b=-0.25, ece_before=0.2,
                                ece_after=0.05, num_pairs=64)
        assert Calibrator.from_json(calibrator.to_json()) == calibrator


class TestSnapshotCalibration:
    @pytest.fixture(scope="class")
    def snapshot(self, tmp_path_factory, tiny_lm):
        from repro.matcher import MlpMatcher
        from repro.pipeline import ERPipeline
        from repro.pretrain import fresh_copy
        extractor = fresh_copy(tiny_lm[0], seed=3)
        extractor.eval()
        matcher = MlpMatcher(extractor.feature_dim,
                             np.random.default_rng(3))
        matcher.eval()
        directory = tmp_path_factory.mktemp("risk_cal") / "pipeline"
        ERPipeline(extractor, matcher).save(directory)
        return directory

    @pytest.fixture(scope="class")
    def valid(self):
        from repro.serve import synthetic_candidates
        pairs = synthetic_candidates(48, seed=5)
        return ERDataset("valid", "bench", [
            p.with_label(int(p.left.attributes == p.right.attributes))
            for p in pairs])

    def test_calibrate_snapshot_changes_digest(self, snapshot, valid):
        before = ArtifactStore(snapshot).manifest_digest()
        calibrator, after = calibrate_snapshot(snapshot, valid)
        assert after != before
        assert calibrator.num_pairs == len(valid)
        loaded = load_calibrator(ArtifactStore(snapshot))
        assert loaded is not None and loaded.a == calibrator.a

    def test_recalibration_is_idempotent_on_digest(self, snapshot, valid):
        __, first = calibrate_snapshot(snapshot, valid)
        __, second = calibrate_snapshot(snapshot, valid)
        assert first == second  # same data, same fit, same bytes

    def test_missing_calibrator_loads_as_none(self, tmp_path):
        assert load_calibrator(ArtifactStore(tmp_path)) is None

    def test_corrupt_calibrator_quarantined_not_fatal(self, tmp_path):
        store = ArtifactStore(tmp_path)
        save_calibrator(store, Calibrator(a=1.0, b=0.0))
        path = store.path(CALIBRATION_NAME)
        path.write_text("{ torn json")
        assert load_calibrator(store) is None  # loud fallback, no crash

    def test_unlabeled_validation_rejected(self, snapshot):
        from repro.serve import synthetic_candidates
        unlabeled = ERDataset("u", "bench", synthetic_candidates(8, seed=1))
        with pytest.raises(ValueError, match="labeled"):
            calibrate_snapshot(snapshot, unlabeled)
