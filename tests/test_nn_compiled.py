"""Equivalence suite for the compiled trace-and-replay inference path.

Pins the contract from ``repro.nn.compiled``: replay is bit-identical
run-to-run on the same buffers, agrees with the ``no_grad`` tape path to
1e-9 in probability with bit-identical decisions across every scheduler
bucket shape, programs are keyed by snapshot digest (hot swap recompiles),
and anything outside the contract — RNN extractors, training-mode modules,
shape mismatches — falls back to the tape loudly and losslessly.

Also pins the serving hot-path fixes that rode along: the cached/clamped
additive mask (a fully padded query row must softmax to finite, uniform
weights), ``no_grad`` building zero tape on the scorers' fallback path,
eval-mode Dropout being a structural identity, and the vectorized overlap
indicators matching the old per-row set-intersection loop exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Entity, EntityPair
from repro.extractors.rnn import RnnExtractor
from repro.matcher import MlpMatcher
from repro.nn import Tensor, grad_enabled, no_grad
from repro.nn import functional as F
from repro.nn.attention import MASK_BIAS, _causal_bias, additive_mask
from repro.nn.compiled import (CompiledInference, CompiledProgram,
                               TraceError, record_program)
from repro.nn.layers import Dropout
from repro.pipeline import ERPipeline
from repro.pretrain import fresh_copy
from repro.serve import BatchScheduler, ParallelScorer, SequentialScorer

PROB_TOLERANCE = 1e-9


def _ragged_pairs(count, seed=0):
    """Candidate pairs whose serialized lengths span many buckets."""
    rng = np.random.default_rng(seed)
    words = ["mesa", "rook", "tide", "volt", "wick", "yarn", "zinc",
             "opal", "pine", "quay"]
    pairs = []
    for i in range(count):
        n_left = int(rng.integers(1, 14))
        n_right = int(rng.integers(1, 14))
        left = Entity(f"l{i}", {"name": " ".join(rng.choice(words, n_left)),
                                "city": str(rng.choice(words))})
        right = Entity(f"r{i}", {"name": " ".join(rng.choice(words, n_right)),
                                 "city": str(rng.choice(words))})
        pairs.append(EntityPair(left, right))
    return pairs


def _tape_probabilities(pipeline, ids, mask):
    with no_grad():
        return pipeline.matcher.probabilities(
            pipeline.extractor.encode(ids, mask))


def _first_batch(pipeline, pairs):
    scheduler = BatchScheduler(pipeline.extractor.vocab,
                               pipeline.extractor.max_len)
    return next(iter(scheduler.schedule(pairs)))


@pytest.fixture(scope="module")
def compiled_setup(tmp_path_factory, tiny_lm):
    """An eval-mode pipeline plus its saved snapshot (for the digest)."""
    extractor = fresh_copy(tiny_lm[0], seed=0)
    extractor.eval()
    matcher = MlpMatcher(extractor.feature_dim, np.random.default_rng(0))
    matcher.eval()
    pipeline = ERPipeline(extractor, matcher)
    directory = tmp_path_factory.mktemp("compiled") / "pipeline"
    pipeline.save(directory)
    return pipeline, directory


# --------------------------------------------------------------------------- #
# additive mask: causal-bias cache and the MASK_BIAS clamp floor
# --------------------------------------------------------------------------- #

class TestAdditiveMask:
    def test_causal_bias_is_cached_and_readonly(self):
        first = _causal_bias(7)
        assert _causal_bias(7) is first
        assert not first.flags.writeable
        assert first[0, 1] == MASK_BIAS and first[1, 0] == 0.0

    def test_noncausal_bias_matches_formula(self):
        mask = np.array([[1.0, 1.0, 0.0], [1.0, 0.0, 0.0]])
        bias = additive_mask(mask)
        assert bias.shape == (2, 1, 1, 3)
        expected = (1.0 - mask)[:, None, None, :] * MASK_BIAS
        assert np.array_equal(bias, expected)

    def test_padding_plus_causal_is_clamped_at_floor(self):
        # A position that is both padded and future must sit at MASK_BIAS,
        # not 2 * MASK_BIAS — the overflow-prone double bias was the bug.
        mask = np.zeros((1, 5))
        bias = additive_mask(mask, causal=True)
        assert bias.min() == MASK_BIAS
        assert bias.max() == MASK_BIAS

    def test_fully_padded_query_row_softmax_is_finite_and_uniform(self):
        # Regression: every key masked out for a query row used to produce
        # exp(-2e9)-style underflow paths; the clamp guarantees a uniform,
        # finite distribution (which the zeroed value rows then discard).
        t = 6
        mask = np.zeros((1, t))
        bias = additive_mask(mask, causal=True)
        scores = np.zeros((1, 1, t, t)) + bias
        weights = F.softmax(Tensor(scores), axis=-1).data
        assert np.all(np.isfinite(weights))
        assert np.allclose(weights, 1.0 / t)
        assert np.allclose(weights.sum(axis=-1), 1.0)


# --------------------------------------------------------------------------- #
# no_grad: zero tape growth on the inference path
# --------------------------------------------------------------------------- #

class TestNoGrad:
    def test_no_grad_blocks_graph_construction(self):
        weight = Tensor(np.ones((2, 2)), requires_grad=True)
        with no_grad():
            out = weight * 2.0
        assert not out.requires_grad
        assert out._parents == ()
        assert out._backward is None
        assert grad_enabled()
        tracked = weight * 2.0
        assert tracked.requires_grad and tracked._parents

    def test_grad_mode_restored_after_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                assert not grad_enabled()
                raise RuntimeError("boom")
        assert grad_enabled()

    def test_scorer_fallback_path_builds_zero_tape(self, compiled_setup,
                                                   monkeypatch):
        # Satellite 2: the tape fallback inside the scorers runs under
        # no_grad, so NO tensor created while scoring may carry parents or
        # a backward closure — the tape must not grow at all.
        pipeline, __ = compiled_setup
        created = []
        original = Tensor._make

        def spy(self, data, parents, backward):
            out = original(self, data, parents, backward)
            created.append(out)
            return out

        monkeypatch.setattr(Tensor, "_make", spy)
        scorer = SequentialScorer(pipeline)  # compiled=False: pure tape
        scorer.score_pairs(_ragged_pairs(12))
        assert created, "the tape path should have run tensor ops"
        assert all(t._parents == () and t._backward is None
                   and not t.requires_grad for t in created)


# --------------------------------------------------------------------------- #
# dropout: structural identity in eval mode, absent from recorded programs
# --------------------------------------------------------------------------- #

class TestDropoutIdentity:
    def test_eval_dropout_returns_the_input_object(self):
        module = Dropout(0.5, np.random.default_rng(0))
        module.eval()
        x = Tensor(np.ones((3, 4)))
        assert module(x) is x

    def test_zero_rate_is_identity_even_in_training(self):
        module = Dropout(0.0, np.random.default_rng(0))
        x = Tensor(np.ones((3, 4)))
        assert module(x) is x

    def test_training_dropout_is_not_identity(self):
        module = Dropout(0.5, np.random.default_rng(0))
        x = Tensor(np.ones((64, 64)))
        assert module(x) is not x

    def test_recorded_program_contains_no_dropout_op(self, tiny_lm):
        # Satellite 3: an extractor built WITH dropout must record the
        # same op list as one without — eval dropout is structurally gone.
        from repro.extractors.transformer import TransformerExtractor
        __, vocab = tiny_lm
        programs = []
        for rate in (0.0, 0.3):
            extractor = TransformerExtractor(
                vocab, np.random.default_rng(0), dim=32, num_layers=1,
                num_heads=2, max_len=96, dropout=rate)
            extractor.eval()
            matcher = MlpMatcher(extractor.feature_dim,
                                 np.random.default_rng(0))
            matcher.eval()
            pipeline = ERPipeline(extractor, matcher)
            batch = _first_batch(pipeline, _ragged_pairs(6))
            programs.append(record_program(pipeline, batch.ids, batch.mask))
        clean, dropped = programs
        assert clean.op_names == dropped.op_names
        assert not any("dropout" in name for name in dropped.op_names)


# --------------------------------------------------------------------------- #
# vectorized overlap indicators == the old per-row set-intersection loop
# --------------------------------------------------------------------------- #

def _overlap_reference(ids, sep, special_limit):
    """The pre-vectorization semantics, verbatim: first [SEP] splits the
    row, non-special tokens occurring on both sides are flagged."""
    n, t = ids.shape
    out = np.zeros((n, t), dtype=np.int64)
    for i in range(n):
        row = ids[i].tolist()
        boundary = row.index(sep) if sep in row else t
        left = {tok for tok in row[:boundary] if tok >= special_limit}
        right = {tok for tok in row[boundary + 1:] if tok >= special_limit}
        shared = left & right
        for j, tok in enumerate(row):
            out[i, j] = int(tok >= special_limit and tok in shared)
    return out


class TestOverlapIndicators:
    def test_matches_loop_reference_on_random_batches(self, compiled_setup):
        pipeline, __ = compiled_setup
        extractor = pipeline.extractor
        vocab = extractor.vocab
        rng = np.random.default_rng(7)
        for __ in range(50):
            n = int(rng.integers(1, 9))
            t = int(rng.integers(2, 24))
            ids = rng.integers(0, len(vocab), size=(n, t))
            # Plant 0-3 [SEP]s per row so every boundary case appears.
            for i in range(n):
                for pos in rng.integers(0, t, size=int(rng.integers(0, 4))):
                    ids[i, pos] = vocab.sep_id
            got = extractor.overlap_indicators(ids)
            want = _overlap_reference(ids, vocab.sep_id, vocab.num_special)
            assert np.array_equal(got, want)

    def test_row_without_sep_shares_nothing(self, compiled_setup):
        pipeline, __ = compiled_setup
        extractor = pipeline.extractor
        limit = extractor.vocab.num_special
        ids = np.full((1, 6), limit + 5, dtype=np.int64)  # no [SEP] at all
        assert extractor.overlap_indicators(ids).sum() == 0


# --------------------------------------------------------------------------- #
# record/replay equivalence against the tape path
# --------------------------------------------------------------------------- #

class TestRecordReplay:
    def test_compiled_matches_tape_across_every_bucket_shape(
            self, compiled_setup):
        pipeline, __ = compiled_setup
        pairs = _ragged_pairs(60)
        tape = SequentialScorer(pipeline).score_pairs(pairs)
        compiled_scorer = SequentialScorer(pipeline, compiled=True)
        compiled = compiled_scorer.score_pairs(pairs)

        assert [d.is_match for d in compiled] == [d.is_match for d in tape]
        drift = max(abs(a.probability - b.probability)
                    for a, b in zip(compiled, tape))
        assert drift <= PROB_TOLERANCE

        engine = compiled_scorer.compiled
        assert engine.stats["fallbacks"] == 0
        assert engine.stats["failed_shapes"] == 0
        # Ragged lengths must exercise more than one bucket shape, and
        # every shape must have compiled exactly once.
        shapes = engine.compiled_shapes
        assert len(shapes) >= 2
        assert engine.stats["compiles"] == len(shapes)

    def test_empty_single_and_overlong_batches(self, compiled_setup):
        pipeline, __ = compiled_setup
        compiled_scorer = SequentialScorer(pipeline, compiled=True)
        tape_scorer = SequentialScorer(pipeline)

        assert compiled_scorer.score_pairs([]) == []

        single = _ragged_pairs(1)
        overlong = [EntityPair(
            Entity("L", {"name": " ".join(f"tok{i}" for i in range(400))}),
            Entity("R", {"name": " ".join(f"tok{i}" for i in range(400))}))]
        for pairs in (single, overlong, single + overlong):
            tape = tape_scorer.score_pairs(pairs)
            compiled = compiled_scorer.score_pairs(pairs)
            assert [d.is_match for d in compiled] == \
                   [d.is_match for d in tape]
            assert all(abs(a.probability - b.probability) <= PROB_TOLERANCE
                       for a, b in zip(compiled, tape))

    def test_replay_reuses_buffers_bit_identically(self, compiled_setup):
        # Satellite 4 property: replay on the SAME buffers twice yields
        # the same bytes — nothing in the program depends on buffer
        # residue from the previous call.
        pipeline, __ = compiled_setup
        vocab_size = len(pipeline.extractor.vocab)
        batch = _first_batch(pipeline, _ragged_pairs(8))
        program = record_program(pipeline, batch.ids, batch.mask)
        n, t = batch.ids.shape

        @settings(max_examples=25, deadline=None)
        @given(st.integers(min_value=0, max_value=2**32 - 1))
        def check(seed):
            rng = np.random.default_rng(seed)
            ids = rng.integers(0, vocab_size, size=(n, t))
            lengths = rng.integers(0, t + 1, size=n)
            mask = (np.arange(t)[None, :] < lengths[:, None]).astype(float)
            first = program.run(ids, mask)
            second = program.run(ids, mask)
            assert first.tobytes() == second.tobytes()
            tape = _tape_probabilities(pipeline, ids, mask)
            assert np.max(np.abs(first - tape)) <= PROB_TOLERANCE

        check()

    def test_program_rejects_other_shapes(self, compiled_setup):
        pipeline, __ = compiled_setup
        batch = _first_batch(pipeline, _ragged_pairs(8))
        program = record_program(pipeline, batch.ids, batch.mask)
        n, t = batch.ids.shape
        with pytest.raises(TraceError):
            program.run(np.zeros((n + 1, t), dtype=np.int64),
                        np.ones((n + 1, t)))

    def test_record_refuses_training_mode(self, tiny_lm):
        extractor = fresh_copy(tiny_lm[0], seed=0)  # training=True default
        matcher = MlpMatcher(extractor.feature_dim, np.random.default_rng(0))
        pipeline = ERPipeline(extractor, matcher)
        batch = _first_batch(pipeline, _ragged_pairs(4))
        with pytest.raises(TraceError, match="eval-mode"):
            record_program(pipeline, batch.ids, batch.mask)

    def test_record_refuses_degenerate_batches(self, compiled_setup):
        pipeline, __ = compiled_setup
        with pytest.raises(TraceError):
            record_program(pipeline, np.zeros((0, 8), dtype=np.int64),
                           np.zeros((0, 8)))
        with pytest.raises(TraceError):
            record_program(pipeline, np.zeros((2, 8), dtype=np.int64),
                           np.zeros((2, 9)))

    def test_patching_leaves_no_residue(self, compiled_setup):
        # Record once, then verify the tape path is byte-for-byte the
        # plain (unpatched) forward: patch-in/patch-out restored cleanly.
        from repro.extractors import transformer as transformer_mod
        pipeline, __ = compiled_setup
        saved_add = Tensor.__dict__["__add__"]
        saved_mask = transformer_mod.additive_mask
        batch = _first_batch(pipeline, _ragged_pairs(6))
        before = _tape_probabilities(pipeline, batch.ids, batch.mask)
        record_program(pipeline, batch.ids, batch.mask)
        after = _tape_probabilities(pipeline, batch.ids, batch.mask)
        assert np.array_equal(before, after)
        assert Tensor.__dict__["__add__"] is saved_add
        assert transformer_mod.additive_mask is saved_mask


# --------------------------------------------------------------------------- #
# digest keying: hot swap must recompile, never replay stale weights
# --------------------------------------------------------------------------- #

class TestDigestKeying:
    def test_new_digest_recompiles_and_old_program_stays_cached(
            self, compiled_setup):
        pipeline, __ = compiled_setup
        batch = _first_batch(pipeline, _ragged_pairs(8))
        engine = CompiledInference(pipeline, digest="digest-a")

        first = engine.program_for(batch.ids, batch.mask)
        assert isinstance(first, CompiledProgram)
        assert engine.program_for(batch.ids, batch.mask) is first
        assert engine.stats["compiles"] == 1

        # Simulate a hot swap: same shape, new snapshot digest.  The key
        # changes, so the cached program must NOT be replayed.
        engine.digest = "digest-b"
        second = engine.program_for(batch.ids, batch.mask)
        assert second is not first
        assert engine.stats["compiles"] == 2

        # Swapping back hits the original cache entry — no third compile.
        engine.digest = "digest-a"
        assert engine.program_for(batch.ids, batch.mask) is first
        assert engine.stats["compiles"] == 2

    def test_programs_carry_their_digest(self, compiled_setup):
        pipeline, directory = compiled_setup
        batch = _first_batch(pipeline, _ragged_pairs(8))
        engine = CompiledInference(pipeline)
        assert engine.digest == pipeline.manifest_digest
        program = engine.program_for(batch.ids, batch.mask)
        assert program.digest == pipeline.manifest_digest

    def test_lru_evicts_oldest_shape(self, compiled_setup):
        pipeline, __ = compiled_setup
        engine = CompiledInference(pipeline, digest="lru", max_programs=2)
        scheduler = BatchScheduler(pipeline.extractor.vocab,
                                   pipeline.extractor.max_len)
        batches = scheduler.schedule(_ragged_pairs(60))
        shapes = []
        for batch in batches:
            if batch.ids.shape not in shapes:
                shapes.append(batch.ids.shape)
                engine.program_for(batch.ids, batch.mask)
            if len(shapes) == 3:
                break
        assert len(shapes) == 3, "need three distinct bucket shapes"
        assert len(engine.compiled_shapes) == 2
        assert shapes[0] not in engine.compiled_shapes


# --------------------------------------------------------------------------- #
# fallback: anything outside the contract stays on the tape, losslessly
# --------------------------------------------------------------------------- #

class TestFallback:
    def test_rnn_extractor_falls_back_bit_identical(self, tiny_lm):
        __, vocab = tiny_lm
        extractor = RnnExtractor(vocab, np.random.default_rng(0),
                                 embedding_dim=16, hidden_dim=16,
                                 feature_dim=32, max_len=96)
        extractor.eval()
        matcher = MlpMatcher(extractor.feature_dim, np.random.default_rng(0))
        matcher.eval()
        pipeline = ERPipeline(extractor, matcher)
        batch = _first_batch(pipeline, _ragged_pairs(8))
        engine = CompiledInference(pipeline, digest="rnn")

        compiled = engine.probabilities(batch.ids, batch.mask)
        tape = _tape_probabilities(pipeline, batch.ids, batch.mask)
        assert np.array_equal(compiled, tape)  # fallback IS the tape
        assert engine.stats["compiles"] == 0
        assert engine.stats["failed_shapes"] == 1
        assert engine.stats["fallbacks"] == 1

        # The failed shape is remembered: no second recording attempt.
        engine.probabilities(batch.ids, batch.mask)
        assert engine.stats["failed_shapes"] == 1
        assert engine.stats["fallbacks"] == 2

    def test_compiled_flag_is_lossless_at_engine_level(self, compiled_setup):
        # An engine asked for compiled inference on an incompatible model
        # must still serve correct answers — only slower.
        __, directory = compiled_setup
        pairs = _ragged_pairs(30, seed=3)
        with ParallelScorer(directory, num_workers=2,
                            compiled=True) as pool:
            parallel = pool.score_pairs(pairs)
        sequential = SequentialScorer(
            ERPipeline.load(directory), compiled=True).score_pairs(pairs)
        tape = SequentialScorer(ERPipeline.load(directory)).score_pairs(pairs)
        assert [d.probability for d in parallel] == \
               [d.probability for d in sequential]
        assert [d.is_match for d in sequential] == [d.is_match for d in tape]
        assert all(abs(a.probability - b.probability) <= PROB_TOLERANCE
                   for a, b in zip(sequential, tape))


# --------------------------------------------------------------------------- #
# all six aligners: adapted snapshots replay within tolerance (slow tier)
# --------------------------------------------------------------------------- #

@pytest.mark.slow
class TestAllAlignersCompile:
    @pytest.fixture(scope="class")
    def adapted(self):
        from repro.api import adapt
        from repro.datasets import load_dataset
        from repro.train import TrainConfig
        from .conftest import TINY_LM
        source = load_dataset("b2", scale=0.1, seed=0)
        target = load_dataset("fz", scale=0.1, seed=0)
        results = {}
        from repro.train.regression import GOLDEN_ALIGNERS
        for aligner in GOLDEN_ALIGNERS:
            result = adapt(source, target, aligner=aligner,
                           config=TrainConfig(epochs=1, seed=0), seed=0,
                           lm_kwargs=dict(TINY_LM))
            result.extractor.eval()
            result.matcher.eval()
            results[aligner] = ERPipeline(result.extractor, result.matcher)
        return results

    @pytest.mark.parametrize(
        "aligner", ["mmd", "k_order", "grl", "invgan", "invgan_kd", "ed"])
    def test_adapted_snapshot_compiles_and_matches_tape(self, adapted,
                                                        aligner):
        pipeline = adapted[aligner]
        pairs = _ragged_pairs(40, seed=11)
        tape = SequentialScorer(pipeline).score_pairs(pairs)
        compiled_scorer = SequentialScorer(pipeline, compiled=True)
        compiled = compiled_scorer.score_pairs(pairs)
        assert [d.is_match for d in compiled] == [d.is_match for d in tape]
        assert all(abs(a.probability - b.probability) <= PROB_TOLERANCE
                   for a, b in zip(compiled, tape))
        assert compiled_scorer.compiled.stats["failed_shapes"] == 0
        assert compiled_scorer.compiled.stats["compiles"] >= 1
