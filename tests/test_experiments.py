"""Tests for the experiment registry (profiles, runner, tables, figures).

Heavy experiments run in benchmarks/; these tests exercise the machinery
at micro scale so regressions in the harness surface quickly.
"""

import numpy as np
import pytest

from repro.experiments import (ALL_METHODS, FAST, PROFILES, MethodScore,
                               Profile, TABLE3_PAIRS, TABLE4_PAIRS,
                               TABLE5_PAIRS, bench_profile, delta_f1,
                               format_table, format_table2, prepare_task,
                               run_method, run_pair, run_table)

MICRO = Profile(
    name="micro", data_scale=0.05, lm_dim=32, lm_layers=1, lm_heads=2,
    max_len=96, pretrain_steps=80, pretrain_corpus_scale=0.01,
    epochs=2, batch_size=8, iterations_per_epoch=2, learning_rate=1e-3,
    beta=0.1, repeats=1)


class TestProfiles:
    def test_registry(self):
        assert set(PROFILES) == {"fast", "standard", "full"}
        assert PROFILES["full"].data_scale == 1.0

    def test_bench_profile_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "standard")
        assert bench_profile().name == "standard"
        monkeypatch.delenv("REPRO_BENCH_PROFILE")
        assert bench_profile().name == "fast"
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "huge")
        with pytest.raises(KeyError):
            bench_profile()

    def test_train_config_overrides(self):
        config = FAST.train_config(seed=3, beta=5.0)
        assert config.beta == 5.0
        assert config.seed == 3
        assert config.epochs == FAST.epochs


class TestPairGrids:
    def test_table_pair_counts_match_paper(self):
        assert len(TABLE3_PAIRS) == 6
        assert len(TABLE4_PAIRS) == 6
        assert len(TABLE5_PAIRS) == 12

    def test_table4_crosses_domains(self):
        from repro.datasets import spec_for
        for source, target in TABLE4_PAIRS:
            assert spec_for(source).domain != spec_for(target).domain

    def test_table3_shares_domains(self):
        from repro.datasets import spec_for
        for source, target in TABLE3_PAIRS:
            assert spec_for(source).domain == spec_for(target).domain


class TestRunner:
    def test_prepare_task_protocol(self):
        task = prepare_task("fz", "zy", MICRO, seed=0)
        assert task.source.is_labeled
        assert not task.target_train.is_labeled
        assert task.target_valid.is_labeled
        assert len(task.target_valid) < len(task.target_test)
        assert task.label == "fodors_zagats->zomato_yelp"

    def test_run_method_unknown(self):
        task = prepare_task("fz", "zy", MICRO, seed=0)
        with pytest.raises(ValueError):
            run_method("magic", task, MICRO)

    def test_run_method_bad_extractor_kind(self):
        task = prepare_task("fz", "zy", MICRO, seed=0)
        with pytest.raises(ValueError):
            run_method("noda", task, MICRO, extractor_kind="cnn")

    @pytest.mark.parametrize("method", ["noda", "mmd", "grl"])
    def test_run_method_lm(self, method):
        task = prepare_task("fz", "zy", MICRO, seed=0)
        result = run_method(method, task, MICRO, seed=0)
        assert 0.0 <= result.best_f1 <= 100.0
        assert len(result.history) == MICRO.epochs

    def test_run_method_rnn_extractor(self):
        task = prepare_task("fz", "zy", MICRO, seed=0)
        result = run_method("noda", task, MICRO, seed=0,
                            extractor_kind="rnn")
        assert 0.0 <= result.best_f1 <= 100.0

    def test_run_pair_collects_scores(self):
        scores = run_pair("fz", "zy", MICRO, methods=("noda", "mmd"))
        assert set(scores) == {"noda", "mmd"}
        assert len(scores["noda"].runs) == MICRO.repeats


class TestScores:
    def test_method_score_stats(self):
        score = MethodScore("mmd", runs=[50.0, 60.0, 70.0])
        assert score.mean == pytest.approx(60.0)
        assert score.std == pytest.approx(np.std([50.0, 60.0, 70.0]))
        assert "60.0" in score.formatted()

    def test_single_run_zero_std(self):
        assert MethodScore("x", runs=[42.0]).std == 0.0

    def test_delta_f1(self):
        scores = {"noda": MethodScore("noda", [40.0]),
                  "mmd": MethodScore("mmd", [55.0]),
                  "grl": MethodScore("grl", [50.0])}
        assert delta_f1(scores) == pytest.approx(15.0)

    def test_delta_f1_requires_noda(self):
        with pytest.raises(KeyError):
            delta_f1({"mmd": MethodScore("mmd", [55.0])})


class TestFormatting:
    def test_format_table2_contains_all_rows(self):
        text = format_table2(scale=1.0)
        assert "28707" in text  # DBLP-Scholar pairs
        assert "Books2" in text

    def test_format_table(self):
        rows = [{"source": "a", "target": "b",
                 "noda": MethodScore("noda", [40.0]),
                 "mmd": MethodScore("mmd", [50.0]),
                 "delta_f1": 10.0}]
        text = format_table(rows, methods=("noda", "mmd"))
        assert "40.0" in text
        assert "10.0" in text

    def test_format_table_missing_method_dash(self):
        rows = [{"source": "a", "target": "b",
                 "noda": MethodScore("noda", [40.0])}]
        text = format_table(rows, methods=("noda", "mmd"))
        assert "-" in text.splitlines()[-1]


class TestRunTable:
    def test_micro_table(self):
        rows = run_table([("fz", "zy")], MICRO, methods=("noda", "mmd"))
        assert len(rows) == 1
        assert "delta_f1" in rows[0]
